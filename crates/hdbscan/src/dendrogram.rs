//! Single-linkage dendrogram from the MST.
//!
//! Sorting the (mutual-reachability) MST edges by weight and merging with a
//! union-find yields exactly the single-linkage hierarchy over the metric —
//! the classical equivalence HDBSCAN* is built on.

use emst_core::{Edge, UnionFind};
use emst_geometry::Scalar;

/// One agglomeration step: clusters `left` and `right` merge at `distance`
/// into a cluster of `size` points. Cluster ids: `0..n` are the points;
/// merge `i` creates cluster `n + i`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub left: u32,
    /// Second merged cluster id.
    pub right: u32,
    /// Merge (non-squared) distance.
    pub distance: Scalar,
    /// Point count of the new cluster.
    pub size: u32,
}

/// The single-linkage hierarchy of `n` points: `n − 1` merges in
/// non-decreasing distance order.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    /// Number of points.
    pub n: usize,
    /// The merges, ordered by distance.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds the hierarchy from spanning-tree edges (weights squared, as
    /// stored by every EMST implementation in this workspace).
    pub fn from_mst_edges(n: usize, edges: &[Edge]) -> Self {
        assert!(n == 0 || edges.len() == n.saturating_sub(1), "edges must span the points");
        let mut sorted: Vec<&Edge> = edges.iter().collect();
        sorted.sort_by_key(|e| e.key());
        let mut dsu = UnionFind::new(n);
        // Representative -> current cluster id.
        let mut cluster_of: Vec<u32> = (0..n as u32).collect();
        let mut sizes: Vec<u32> = vec![1; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        for (i, e) in sorted.iter().enumerate() {
            let ra = dsu.find(e.u as usize);
            let rb = dsu.find(e.v as usize);
            debug_assert_ne!(ra, rb, "MST edges cannot close cycles");
            let (ca, cb) = (cluster_of[ra], cluster_of[rb]);
            let size = sizes[ra] + sizes[rb];
            dsu.union(ra, rb);
            let r = dsu.find(ra);
            let new_id = (n + i) as u32;
            cluster_of[r] = new_id;
            sizes[r] = size;
            merges.push(Merge { left: ca.min(cb), right: ca.max(cb), distance: e.weight(), size });
        }
        Self { n, merges }
    }

    /// Cluster id of the root (the final merge), if any.
    pub fn root(&self) -> Option<u32> {
        (!self.merges.is_empty()).then(|| (self.n + self.merges.len() - 1) as u32)
    }

    /// Size of a cluster id (1 for leaves).
    pub fn size(&self, id: u32) -> u32 {
        if (id as usize) < self.n {
            1
        } else {
            self.merges[id as usize - self.n].size
        }
    }

    /// The merge that created internal cluster `id`.
    pub fn merge_of(&self, id: u32) -> &Merge {
        &self.merges[id as usize - self.n]
    }

    /// True when `id` is a single point.
    pub fn is_point(&self, id: u32) -> bool {
        (id as usize) < self.n
    }

    /// Collects the point ids under cluster `id`.
    pub fn members(&self, id: u32) -> Vec<u32> {
        let mut out = vec![];
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            if self.is_point(c) {
                out.push(c);
            } else {
                let m = self.merge_of(c);
                stack.push(m.left);
                stack.push(m.right);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_edges(n: usize, step: f32) -> Vec<Edge> {
        (0..n - 1)
            .map(|i| Edge::new(i as u32, i as u32 + 1, (step * (i as f32 + 1.0)).powi(2)))
            .collect()
    }

    #[test]
    fn merges_are_distance_ordered_and_sized() {
        let edges = path_edges(5, 1.0); // weights 1,2,3,4
        let d = Dendrogram::from_mst_edges(5, &edges);
        assert_eq!(d.merges.len(), 4);
        for w in d.merges.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert_eq!(d.merges.last().unwrap().size, 5);
        assert_eq!(d.root(), Some(8));
        assert_eq!(d.size(8), 5);
    }

    #[test]
    fn members_cover_all_points_at_root() {
        let edges = path_edges(7, 0.5);
        let d = Dendrogram::from_mst_edges(7, &edges);
        let mut m = d.members(d.root().unwrap());
        m.sort_unstable();
        assert_eq!(m, (0..7).collect::<Vec<u32>>());
    }

    #[test]
    fn two_cluster_structure_appears_in_hierarchy() {
        // Points 0-1-2 tight, 3-4-5 tight, one long bridge.
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(4, 5, 1.0),
            Edge::new(2, 3, 100.0),
        ];
        let d = Dendrogram::from_mst_edges(6, &edges);
        // The last merge must be the bridge, joining two size-3 clusters.
        let last = d.merges.last().unwrap();
        assert_eq!(last.distance, 10.0);
        assert_eq!(d.size(last.left), 3);
        assert_eq!(d.size(last.right), 3);
    }

    #[test]
    fn empty_and_singleton() {
        let d = Dendrogram::from_mst_edges(0, &[]);
        assert!(d.merges.is_empty());
        assert_eq!(d.root(), None);
        let d = Dendrogram::from_mst_edges(1, &[]);
        assert!(d.merges.is_empty());
        assert_eq!(d.size(0), 1);
    }

    #[test]
    fn zero_weight_edges_merge_first() {
        let edges = vec![Edge::new(0, 1, 0.0), Edge::new(1, 2, 4.0)];
        let d = Dendrogram::from_mst_edges(3, &edges);
        assert_eq!(d.merges[0].distance, 0.0);
        assert_eq!(d.merges[1].distance, 2.0);
    }
}
