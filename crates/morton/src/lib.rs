//! Morton (Z-order) codes for 2D and 3D points.
//!
//! The linear BVH of the paper (ArborX, following Karras 2012 / Apetrei 2014)
//! linearizes the input along a Z-order space-filling curve before its fully
//! parallel bottom-up construction. This crate provides:
//!
//! - bit interleaving/de-interleaving in 32-, 64- and 128-bit widths
//!   ([`morton2_u64`], [`morton3_u64`], [`morton2_u128`], [`morton3_u128`], …);
//!   the 128-bit variants are the resolution increase the paper proposes in
//!   §4.1 for pathologically dense datasets like GeoLife;
//! - [`MortonEncoder`], which maps floating-point coordinates inside a scene
//!   bounding box onto the integer grid and encodes them;
//! - helpers to produce the Morton *ordering* of a point set
//!   ([`morton_order`]), which is also where the paper's Optimization 2
//!   (upper bounds from curve-adjacent pairs) gets its pairs from.

// Loops over the const-generic dimension D index several parallel arrays;
// clippy's iterator suggestion does not apply cleanly there.
#![allow(clippy::needless_range_loop)]

pub mod encoder;

pub use encoder::{morton_order, MortonEncoder};

use emst_geometry::Point;

/// Number of bits used per dimension by the 64-bit 2D encoding.
pub const BITS_2D_U64: u32 = 32;
/// Number of bits used per dimension by the 64-bit 3D encoding.
pub const BITS_3D_U64: u32 = 21;
/// Number of bits used per dimension by the 128-bit 2D encoding.
pub const BITS_2D_U128: u32 = 64;
/// Number of bits used per dimension by the 128-bit 3D encoding.
pub const BITS_3D_U128: u32 = 42;

/// Spreads the low 32 bits of `x` so that bit `i` moves to bit `2i`.
#[inline]
pub fn expand_bits_2(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`expand_bits_2`]: collects bits 0,2,4,… into the low 32 bits.
#[inline]
pub fn compact_bits_2(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Spreads the low 21 bits of `x` so that bit `i` moves to bit `3i`.
#[inline]
pub fn expand_bits_3(x: u32) -> u64 {
    let mut x = (x as u64) & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`expand_bits_3`].
#[inline]
pub fn compact_bits_3(x: u64) -> u32 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x0000_0000_001F_FFFF;
    x as u32
}

/// 64-bit Morton code of a 2D grid cell (32 bits per dimension).
#[inline]
pub fn morton2_u64(x: u32, y: u32) -> u64 {
    expand_bits_2(x) | (expand_bits_2(y) << 1)
}

/// Decodes [`morton2_u64`].
#[inline]
pub fn demorton2_u64(code: u64) -> (u32, u32) {
    (compact_bits_2(code), compact_bits_2(code >> 1))
}

/// 64-bit Morton code of a 3D grid cell (21 bits per dimension).
#[inline]
pub fn morton3_u64(x: u32, y: u32, z: u32) -> u64 {
    expand_bits_3(x) | (expand_bits_3(y) << 1) | (expand_bits_3(z) << 2)
}

/// Decodes [`morton3_u64`].
#[inline]
pub fn demorton3_u64(code: u64) -> (u32, u32, u32) {
    (compact_bits_3(code), compact_bits_3(code >> 1), compact_bits_3(code >> 2))
}

/// 128-bit Morton code of a 2D grid cell (64 bits per dimension).
///
/// Interleaves via two 32-bit halves per axis.
#[inline]
pub fn morton2_u128(x: u64, y: u64) -> u128 {
    let lo = morton2_u64(x as u32, y as u32) as u128;
    let hi = morton2_u64((x >> 32) as u32, (y >> 32) as u32) as u128;
    (hi << 64) | lo
}

/// Decodes [`morton2_u128`].
#[inline]
pub fn demorton2_u128(code: u128) -> (u64, u64) {
    let (xl, yl) = demorton2_u64(code as u64);
    let (xh, yh) = demorton2_u64((code >> 64) as u64);
    (((xh as u64) << 32) | xl as u64, ((yh as u64) << 32) | yl as u64)
}

/// 128-bit Morton code of a 3D grid cell (42 bits per dimension).
///
/// Interleaves via two 21-bit halves per axis.
#[inline]
pub fn morton3_u128(x: u64, y: u64, z: u64) -> u128 {
    const M21: u64 = 0x1F_FFFF;
    let lo = morton3_u64((x & M21) as u32, (y & M21) as u32, (z & M21) as u32) as u128;
    let hi =
        morton3_u64(((x >> 21) & M21) as u32, ((y >> 21) & M21) as u32, ((z >> 21) & M21) as u32)
            as u128;
    (hi << 63) | lo
}

/// Decodes [`morton3_u128`].
#[inline]
pub fn demorton3_u128(code: u128) -> (u64, u64, u64) {
    let lo_mask: u128 = (1u128 << 63) - 1;
    let (xl, yl, zl) = demorton3_u64((code & lo_mask) as u64);
    let (xh, yh, zh) = demorton3_u64((code >> 63) as u64);
    (
        ((xh as u64) << 21) | xl as u64,
        ((yh as u64) << 21) | yl as u64,
        ((zh as u64) << 21) | zl as u64,
    )
}

/// Dimension-generic 64-bit Morton encoding of an integer grid cell.
///
/// Only `D = 2` and `D = 3` are supported (the paper's scope).
#[inline]
pub fn morton_u64<const D: usize>(cell: [u32; D]) -> u64 {
    match D {
        2 => morton2_u64(cell[0], cell[1]),
        3 => morton3_u64(cell[0], cell[1], cell[2]),
        _ => unsupported_dimension(D),
    }
}

/// Dimension-generic 128-bit Morton encoding.
#[inline]
pub fn morton_u128<const D: usize>(cell: [u64; D]) -> u128 {
    match D {
        2 => morton2_u128(cell[0], cell[1]),
        3 => morton3_u128(cell[0], cell[1], cell[2]),
        _ => unsupported_dimension(D),
    }
}

/// Bits per dimension of the 64-bit encoding for dimension `D`.
#[inline]
pub const fn bits_per_dim_u64(d: usize) -> u32 {
    match d {
        2 => BITS_2D_U64,
        3 => BITS_3D_U64,
        _ => 0,
    }
}

#[cold]
#[inline(never)]
fn unsupported_dimension(d: usize) -> ! {
    panic!("Morton codes are implemented for D = 2 and D = 3 only, got D = {d}")
}

/// Naive reference interleave, used by tests to validate the magic-mask
/// implementations bit by bit.
pub fn morton_naive<const D: usize>(cell: [u64; D], bits: u32) -> u128 {
    let mut out: u128 = 0;
    for b in 0..bits {
        for (axis, &c) in cell.iter().enumerate() {
            let bit = ((c >> b) & 1) as u128;
            out |= bit << (b as usize * D + axis);
        }
    }
    out
}

/// Convenience: the 64-bit Morton code of `p` inside `scene`, at the full
/// per-dimension resolution. See [`MortonEncoder`] for the grid mapping.
pub fn morton_code_u64<const D: usize>(p: &Point<D>, scene: &emst_geometry::Aabb<D>) -> u64 {
    MortonEncoder::new(scene).encode_u64(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn expand_compact_2_round_trip_exhaustive_low_bits() {
        for x in 0u32..1024 {
            assert_eq!(compact_bits_2(expand_bits_2(x)), x);
        }
        assert_eq!(compact_bits_2(expand_bits_2(u32::MAX)), u32::MAX);
    }

    #[test]
    fn expand_compact_3_round_trip_exhaustive_low_bits() {
        for x in 0u32..1024 {
            assert_eq!(compact_bits_3(expand_bits_3(x)), x);
        }
        let max21 = (1u32 << 21) - 1;
        assert_eq!(compact_bits_3(expand_bits_3(max21)), max21);
    }

    #[test]
    fn morton2_matches_naive_on_small_values() {
        for x in 0u32..16 {
            for y in 0u32..16 {
                assert_eq!(
                    morton2_u64(x, y) as u128,
                    morton_naive([x as u64, y as u64], 32),
                    "x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn morton3_matches_naive_on_small_values() {
        for x in 0u32..8 {
            for y in 0u32..8 {
                for z in 0u32..8 {
                    assert_eq!(
                        morton3_u64(x, y, z) as u128,
                        morton_naive([x as u64, y as u64, z as u64], 21),
                        "x={x} y={y} z={z}"
                    );
                }
            }
        }
    }

    #[test]
    fn morton2_is_monotone_along_axes() {
        // Fixing one axis, the code must grow with the other.
        for y in [0u32, 5, 1000] {
            let mut prev = morton2_u64(0, y);
            for x in 1u32..100 {
                let cur = morton2_u64(x, y);
                assert!(cur > prev);
                prev = cur;
            }
        }
    }

    #[test]
    fn morton_u64_dispatches_by_dimension() {
        assert_eq!(morton_u64([3u32, 5]), morton2_u64(3, 5));
        assert_eq!(morton_u64([3u32, 5, 7]), morton3_u64(3, 5, 7));
    }

    proptest! {
        #[test]
        fn morton2_u64_round_trips(x in any::<u32>(), y in any::<u32>()) {
            prop_assert_eq!(demorton2_u64(morton2_u64(x, y)), (x, y));
        }

        #[test]
        fn morton3_u64_round_trips(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
            prop_assert_eq!(demorton3_u64(morton3_u64(x, y, z)), (x, y, z));
        }

        #[test]
        fn morton2_u128_round_trips(x in any::<u64>(), y in any::<u64>()) {
            prop_assert_eq!(demorton2_u128(morton2_u128(x, y)), (x, y));
        }

        #[test]
        fn morton3_u128_round_trips(x in 0u64..(1 << 42), y in 0u64..(1 << 42), z in 0u64..(1 << 42)) {
            prop_assert_eq!(demorton3_u128(morton3_u128(x, y, z)), (x, y, z));
        }

        #[test]
        fn morton2_u128_matches_naive(x in 0u64..(1 << 40), y in 0u64..(1 << 40)) {
            prop_assert_eq!(morton2_u128(x, y), morton_naive([x, y], 64));
        }

        #[test]
        fn morton3_u128_matches_naive(x in 0u64..(1 << 42), y in 0u64..(1 << 42), z in 0u64..(1 << 42)) {
            prop_assert_eq!(morton3_u128(x, y, z), morton_naive([x, y, z], 42));
        }

        #[test]
        fn morton2_preserves_shared_prefix_locality(
            x in 0u32..65536, y in 0u32..65536
        ) {
            // Cells sharing high bits in both coordinates share high Morton bits:
            // quadrant identity is preserved.
            let c1 = morton2_u64(x, y);
            let c2 = morton2_u64(x | 1, y); // perturb lowest bit only
            // Differ at most in the low 2 interleaved bits.
            prop_assert!(c1 >> 2 == c2 >> 2 || c1 >> 1 == c2 >> 1);
        }
    }
}
