//! Mapping floating-point points onto the Morton integer grid.

use emst_geometry::{Aabb, Point};

use crate::{bits_per_dim_u64, morton_u128, morton_u64, BITS_2D_U128, BITS_3D_U128};

/// Maps points inside a scene bounding box onto the Z-order integer grid.
///
/// The mapping is done in `f64` regardless of the `f32` coordinates: at 32
/// bits per dimension the grid resolution exceeds the `f32` mantissa, and
/// computing the cell index in `f32` would quantize the curve to ~24 bits,
/// which is exactly the under-resolution problem the paper observes on
/// GeoLife (§4.1).
#[derive(Clone, Copy, Debug)]
pub struct MortonEncoder<const D: usize> {
    min: [f64; D],
    /// Multiplier per dimension: `cells / extent` (0 for degenerate extents).
    scale: [f64; D],
}

impl<const D: usize> MortonEncoder<D> {
    /// Creates an encoder for points inside `scene`.
    ///
    /// Points outside the box are clamped onto it, so the encoder is total.
    pub fn new(scene: &Aabb<D>) -> Self {
        let mut min = [0.0; D];
        let mut scale = [0.0; D];
        for d in 0..D {
            min[d] = scene.min[d] as f64;
            let extent = scene.max[d] as f64 - min[d];
            scale[d] = if extent > 0.0 { 1.0 / extent } else { 0.0 };
        }
        Self { min, scale }
    }

    /// Normalized coordinate of `p` in dimension `d`, clamped to `[0, 1]`.
    #[inline]
    fn unit(&self, p: &Point<D>, d: usize) -> f64 {
        ((p[d] as f64 - self.min[d]) * self.scale[d]).clamp(0.0, 1.0)
    }

    /// Grid cell of `p` at `bits` bits per dimension.
    #[inline]
    pub fn cell_u64(&self, p: &Point<D>, bits: u32) -> [u32; D] {
        debug_assert!(bits <= 32);
        let cells = (1u64 << bits) as f64;
        let max_cell = (1u64 << bits) - 1;
        let mut cell = [0u32; D];
        for d in 0..D {
            cell[d] = ((self.unit(p, d) * cells) as u64).min(max_cell) as u32;
        }
        cell
    }

    /// 64-bit Morton code of `p` (32 bits/dim in 2D, 21 bits/dim in 3D).
    #[inline]
    pub fn encode_u64(&self, p: &Point<D>) -> u64 {
        let bits = bits_per_dim_u64(D);
        morton_u64(self.cell_u64(p, bits))
    }

    /// 128-bit Morton code of `p` (64 bits/dim in 2D, 42 bits/dim in 3D) —
    /// the higher-resolution curve the paper suggests for extremely dense
    /// datasets.
    #[inline]
    pub fn encode_u128(&self, p: &Point<D>) -> u128 {
        let bits = match D {
            2 => BITS_2D_U128,
            3 => BITS_3D_U128,
            _ => panic!("unsupported dimension {D}"),
        };
        let cells = 2f64.powi(bits as i32);
        let max_cell = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut cell = [0u64; D];
        for d in 0..D {
            let c = self.unit(p, d) * cells;
            cell[d] = if c >= cells { max_cell } else { (c as u64).min(max_cell) };
        }
        morton_u128(cell)
    }
}

/// Returns the permutation that sorts `points` along the Z-order curve,
/// tie-broken by original index so the order is always a strict total order
/// (the Karras duplicate-key trick).
///
/// This is the "sort along a space-filling curve" step of the linear BVH
/// construction, and the source of the curve-adjacent pairs used by the
/// paper's Optimization 2.
pub fn morton_order<const D: usize>(points: &[Point<D>], scene: &Aabb<D>) -> Vec<u32> {
    let enc = MortonEncoder::new(scene);
    let codes: Vec<u64> = points.iter().map(|p| enc.encode_u64(p)).collect();
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.sort_by_key(|&i| (codes[i as usize], i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_square() -> Aabb<2> {
        Aabb::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]))
    }

    #[test]
    fn corners_map_to_extreme_cells() {
        let enc = MortonEncoder::new(&unit_square());
        assert_eq!(enc.cell_u64(&Point::new([0.0, 0.0]), 16), [0, 0]);
        assert_eq!(enc.cell_u64(&Point::new([1.0, 1.0]), 16), [65535, 65535]);
    }

    #[test]
    fn out_of_box_points_are_clamped() {
        let enc = MortonEncoder::new(&unit_square());
        assert_eq!(enc.cell_u64(&Point::new([-5.0, 2.0]), 8), [0, 255]);
    }

    #[test]
    fn degenerate_extent_maps_to_zero() {
        // All points share x == 3; the x extent is empty.
        let scene = Aabb::from_corners(Point::new([3.0, 0.0]), Point::new([3.0, 1.0]));
        let enc = MortonEncoder::new(&scene);
        assert_eq!(enc.cell_u64(&Point::new([3.0, 0.5]), 8), [0, 128]);
    }

    #[test]
    fn encode_u128_refines_encode_u64() {
        // Two points that collide at 21-bit 3D resolution but differ at 42.
        let scene = Aabb::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let enc = MortonEncoder::new(&scene);
        let a = Point::new([0.1, 0.1]);
        let b = Point::new([0.9, 0.9]);
        // Ordering agrees between the widths on well-separated points.
        assert_eq!(
            enc.encode_u64(&a) < enc.encode_u64(&b),
            enc.encode_u128(&a) < enc.encode_u128(&b)
        );
    }

    #[test]
    fn morton_order_is_a_permutation() {
        let pts = vec![
            Point::new([0.9, 0.9]),
            Point::new([0.1, 0.1]),
            Point::new([0.5, 0.5]),
            Point::new([0.1, 0.1]), // duplicate
        ];
        let scene = Aabb::from_points(&pts);
        let order = morton_order(&pts, &scene);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // duplicates tie-break by index
        let pos1 = order.iter().position(|&i| i == 1).unwrap();
        let pos3 = order.iter().position(|&i| i == 3).unwrap();
        assert!(pos1 < pos3);
    }

    #[test]
    fn morton_order_puts_origin_first_in_unit_square() {
        let pts = vec![Point::new([0.99, 0.99]), Point::new([0.01, 0.01])];
        let order = morton_order(&pts, &unit_square());
        assert_eq!(order, vec![1, 0]);
    }

    proptest! {
        #[test]
        fn cells_are_within_range(x in -10.0f32..10.0, y in -10.0f32..10.0, bits in 1u32..=32) {
            let scene = Aabb::from_corners(Point::new([-10.0, -10.0]), Point::new([10.0, 10.0]));
            let enc = MortonEncoder::new(&scene);
            let cell = enc.cell_u64(&Point::new([x, y]), bits);
            let max = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
            prop_assert!(cell[0] <= max && cell[1] <= max);
        }

        #[test]
        fn encoder_is_monotone_per_axis(
            x1 in 0.0f32..1.0, x2 in 0.0f32..1.0, y in 0.0f32..1.0
        ) {
            let enc = MortonEncoder::new(&unit_square());
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let ca = enc.cell_u64(&Point::new([lo, y]), 16)[0];
            let cb = enc.cell_u64(&Point::new([hi, y]), 16)[0];
            prop_assert!(ca <= cb);
        }
    }
}
