//! Deterministic fault injection for the spill/reload paths.
//!
//! A [`FaultPlan`] is a seeded set of rules, one decision per I/O
//! operation: every spill write and every spill read asks the plan whether
//! (and how) to fail. Decisions are a pure function of `(seed, site,
//! operation ordinal, rule index)` — the same plan replayed over the same
//! operation sequence injects the same faults, which is what lets the chaos
//! suite assert exact outcomes and lets a CI failure be reproduced from its
//! seed alone.
//!
//! The plan deliberately covers the two failure shapes a storage layer must
//! survive:
//!
//! - **honest errors** ([`FaultKind::Eio`], [`FaultKind::Enospc`]): the
//!   syscall reports failure — retry/backoff/relocation territory;
//! - **silent corruption** ([`FaultKind::ShortWrite`],
//!   [`FaultKind::BitFlip`]): the syscall reports success and the bytes are
//!   wrong — checksum territory; nothing but verification can catch it;
//! - plus [`FaultKind::Stall`] for latency, which must never corrupt
//!   anything, only cost time.
//!
//! Plans parse from a compact spec string (the CLI's `--fault-plan`):
//!
//! ```text
//! seed=42;write=eio@0.5;read=bitflip@0.25;write=stall:10@0.1
//! ```
//!
//! reads as: seed 42; each write fails with EIO with probability 0.5, else
//! stalls 10 ms with probability 0.1; each read bit-flips with probability
//! 0.25. Rules are evaluated in spec order per site; the first that fires
//! wins, so at most one fault applies per operation.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Where in the storage path a fault decision is being made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A spill-file write (eviction persistence).
    Write,
    /// A spill-file read (reload, salt probing).
    Read,
    /// A `--metrics-file` snapshot write.
    MetricsWrite,
    /// A dataset ingest read (CSV/XYZ bytes before parsing).
    IngestRead,
}

/// The failure to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation errors with `EIO` (nothing is written/read).
    Eio,
    /// A write lands a partial file, then errors with `ENOSPC`; a read
    /// errors the same way (quota exceeded mid-read).
    Enospc,
    /// Silent truncation: the operation *succeeds* but only a prefix of
    /// the bytes makes it through.
    ShortWrite,
    /// Silent corruption: the operation succeeds with exactly one bit
    /// flipped somewhere in the payload.
    BitFlip,
    /// The operation stalls this many milliseconds, then succeeds cleanly.
    Stall(u64),
}

#[derive(Debug)]
struct Rule {
    site: FaultSite,
    kind: FaultKind,
    /// Probability in `[0, 1]` that this rule fires on a given operation.
    prob: f64,
}

/// A seeded, deterministic fault-injection plan. Cheap to share behind an
/// `Arc`; thread-safe (the per-site ordinals are atomics — under
/// concurrency the *assignment* of ordinals to operations races, but every
/// ordinal is still decided exactly once, so the injected fault *count*
/// distribution is stable and a serialized replay is fully reproducible).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    metrics_write_ops: AtomicU64,
    ingest_read_ops: AtomicU64,
    injected: AtomicU64,
}

fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl FaultPlan {
    /// An empty plan (no rules — never injects) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: vec![],
            write_ops: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
            metrics_write_ops: AtomicU64::new(0),
            ingest_read_ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Appends a rule: at `site`, inject `kind` with probability `prob`
    /// (clamped to `[0, 1]`). Rules are consulted in insertion order.
    pub fn with_rule(mut self, site: FaultSite, kind: FaultKind, prob: f64) -> Self {
        self.rules.push(Rule { site, kind, prob: prob.clamp(0.0, 1.0) });
        self
    }

    /// Parses the CLI spec format (see the module docs):
    /// `seed=N;<site>=<kind>[:ms]@<prob>;...` where `site` is
    /// `write`/`read` and `kind` is `eio`, `enospc`, `shortwrite`,
    /// `bitflip` or `stall:<ms>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new(0);
        let mut saw_seed = false;
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (lhs, rhs) =
                part.split_once('=').ok_or_else(|| format!("fault-plan: `{part}` is not k=v"))?;
            if lhs == "seed" {
                plan.seed = rhs.parse().map_err(|_| format!("fault-plan: bad seed `{rhs}`"))?;
                saw_seed = true;
                continue;
            }
            let site = match lhs {
                "write" => FaultSite::Write,
                "read" => FaultSite::Read,
                "metrics" => FaultSite::MetricsWrite,
                "ingest" => FaultSite::IngestRead,
                _ => return Err(format!("fault-plan: unknown site `{lhs}`")),
            };
            let (kind_s, prob_s) = rhs
                .split_once('@')
                .ok_or_else(|| format!("fault-plan: `{rhs}` is missing `@prob`"))?;
            let kind = match kind_s.split_once(':') {
                Some(("stall", ms)) => FaultKind::Stall(
                    ms.parse().map_err(|_| format!("fault-plan: bad stall ms `{ms}`"))?,
                ),
                None => match kind_s {
                    "eio" => FaultKind::Eio,
                    "enospc" => FaultKind::Enospc,
                    "shortwrite" => FaultKind::ShortWrite,
                    "bitflip" => FaultKind::BitFlip,
                    _ => return Err(format!("fault-plan: unknown kind `{kind_s}`")),
                },
                Some(_) => return Err(format!("fault-plan: unknown kind `{kind_s}`")),
            };
            let prob: f64 =
                prob_s.parse().map_err(|_| format!("fault-plan: bad probability `{prob_s}`"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("fault-plan: probability {prob} outside [0, 1]"));
            }
            plan.rules.push(Rule { site, kind, prob });
        }
        if !saw_seed && !plan.rules.is_empty() {
            return Err("fault-plan: missing `seed=N`".to_string());
        }
        Ok(plan)
    }

    fn ordinal(&self, site: FaultSite) -> &AtomicU64 {
        match site {
            FaultSite::Write => &self.write_ops,
            FaultSite::Read => &self.read_ops,
            FaultSite::MetricsWrite => &self.metrics_write_ops,
            FaultSite::IngestRead => &self.ingest_read_ops,
        }
    }

    /// Decides the fate of the next operation at `site`: `None` means run
    /// cleanly. Consumes one ordinal per call regardless of outcome.
    pub fn decide(&self, site: FaultSite) -> Option<FaultKind> {
        let op = self.ordinal(site).fetch_add(1, Relaxed);
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let h = fnv1a(&[self.seed, site as u64, op, i as u64]);
            // Map the hash to [0, 1) and compare against the rule's odds.
            if (h >> 11) as f64 / ((1u64 << 53) as f64) < rule.prob {
                self.injected.fetch_add(1, Relaxed);
                return Some(rule.kind);
            }
        }
        None
    }

    /// A deterministic "random" index in `0..len` for this operation —
    /// where a bit flip or short write lands. Varies per op ordinal via a
    /// side hash so corruption doesn't always hit the same byte.
    pub fn position(&self, site: FaultSite, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        // `decide` already consumed the ordinal for this op; reuse it.
        let op = self.ordinal(site).load(Relaxed);
        (fnv1a(&[self.seed ^ 0x9e3779b97f4a7c15, site as u64, op]) % len as u64) as usize
    }

    /// Total faults injected so far — the chaos tests' sanity check that
    /// the plan actually fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Relaxed)
    }
}

/// Writes `bytes` to `path` through the plan's fault decision at `site`
/// (pass [`FaultSite::MetricsWrite`] for metrics snapshots). `None` plan
/// writes cleanly. Mirrors the spill-layer fault semantics: `Eio` writes
/// nothing, `Enospc` lands a partial file then errors, `ShortWrite` and
/// `BitFlip` *succeed* with corrupted bytes, `Stall` sleeps then succeeds.
pub fn faulted_write(
    plan: Option<&FaultPlan>,
    site: FaultSite,
    path: &std::path::Path,
    bytes: &[u8],
) -> std::io::Result<()> {
    let Some(plan) = plan else { return std::fs::write(path, bytes) };
    match plan.decide(site) {
        None => std::fs::write(path, bytes),
        Some(FaultKind::Eio) => Err(std::io::Error::from_raw_os_error(5)),
        Some(FaultKind::Enospc) => {
            let cut = plan.position(site, bytes.len());
            let _ = std::fs::write(path, &bytes[..cut]);
            Err(std::io::Error::from_raw_os_error(28))
        }
        Some(FaultKind::ShortWrite) => {
            std::fs::write(path, &bytes[..plan.position(site, bytes.len())])
        }
        Some(FaultKind::BitFlip) => {
            let mut image = bytes.to_vec();
            if !image.is_empty() {
                let pos = plan.position(site, image.len());
                image[pos] ^= 1 << (pos % 8);
            }
            std::fs::write(path, &image)
        }
        Some(FaultKind::Stall(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            std::fs::write(path, bytes)
        }
    }
}

/// Reads `path` through the plan's fault decision at `site` (pass
/// [`FaultSite::IngestRead`] for dataset ingest). `None` plan reads
/// cleanly. `Eio`/`Enospc` error before reading; `ShortWrite` silently
/// truncates the returned bytes; `BitFlip` silently flips one bit; `Stall`
/// sleeps then reads cleanly.
pub fn faulted_read(
    plan: Option<&FaultPlan>,
    site: FaultSite,
    path: &std::path::Path,
) -> std::io::Result<Vec<u8>> {
    let Some(plan) = plan else { return std::fs::read(path) };
    match plan.decide(site) {
        None => std::fs::read(path),
        Some(FaultKind::Eio) => Err(std::io::Error::from_raw_os_error(5)),
        Some(FaultKind::Enospc) => Err(std::io::Error::from_raw_os_error(28)),
        Some(FaultKind::ShortWrite) => {
            let mut bytes = std::fs::read(path)?;
            bytes.truncate(plan.position(site, bytes.len()));
            Ok(bytes)
        }
        Some(FaultKind::BitFlip) => {
            let mut bytes = std::fs::read(path)?;
            if !bytes.is_empty() {
                let pos = plan.position(site, bytes.len());
                bytes[pos] ^= 1 << (pos % 8);
            }
            Ok(bytes)
        }
        Some(FaultKind::Stall(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            std::fs::read(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_probability_shaped() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed).with_rule(FaultSite::Write, FaultKind::Eio, 0.5);
            (0..1000).map(|_| plan.decide(FaultSite::Write).is_some()).collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same decisions");
        assert_ne!(a, run(8), "different seed, different decisions");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((300..700).contains(&hits), "p=0.5 over 1000 ops fired {hits} times");
        // Reads are an independent stream: no write rule applies.
        let plan = FaultPlan::new(7).with_rule(FaultSite::Write, FaultKind::Eio, 1.0);
        assert_eq!(plan.decide(FaultSite::Read), None);
        assert_eq!(plan.decide(FaultSite::Write), Some(FaultKind::Eio));
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(1).with_rule(FaultSite::Read, FaultKind::BitFlip, 1.0).with_rule(
            FaultSite::Read,
            FaultKind::Eio,
            1.0,
        );
        for _ in 0..10 {
            assert_eq!(plan.decide(FaultSite::Read), Some(FaultKind::BitFlip));
        }
    }

    #[test]
    fn spec_parsing_round_trips_the_documented_example() {
        let plan =
            FaultPlan::parse("seed=42;write=eio@0.5;read=bitflip@0.25;write=stall:10@0.1").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[2].kind, FaultKind::Stall(10));
        assert!(FaultPlan::parse("").unwrap().rules.is_empty());
        for bad in [
            "write=eio@0.5",            // missing seed
            "seed=x",                   // bad seed
            "seed=1;flush=eio@0.5",     // unknown site
            "seed=1;write=explode@0.5", // unknown kind
            "seed=1;write=eio@1.5",     // probability out of range
            "seed=1;write=eio",         // missing probability
            "seed=1;write=stall:abc@1", // bad stall duration
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn metrics_and_ingest_sites_are_independent_streams() {
        let plan = FaultPlan::parse("seed=9;metrics=eio@1.0;ingest=bitflip@1.0").unwrap();
        // The new sites fire on their own ordinals without touching the
        // spill streams.
        assert_eq!(plan.decide(FaultSite::Write), None);
        assert_eq!(plan.decide(FaultSite::Read), None);
        assert_eq!(plan.decide(FaultSite::MetricsWrite), Some(FaultKind::Eio));
        assert_eq!(plan.decide(FaultSite::IngestRead), Some(FaultKind::BitFlip));
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn faulted_write_and_read_honour_the_plan() {
        let dir = std::env::temp_dir().join(format!("emst_fault_helpers_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let payload = b"emst_serve_hits_total 3\n";

        // Eio: honest error, nothing written.
        let plan = FaultPlan::new(4).with_rule(FaultSite::MetricsWrite, FaultKind::Eio, 1.0);
        let err = faulted_write(Some(&plan), FaultSite::MetricsWrite, &path, payload).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert!(!path.exists());

        // Clean plan (no rules) and no plan both write faithfully.
        faulted_write(Some(&FaultPlan::new(1)), FaultSite::MetricsWrite, &path, payload).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), payload);
        faulted_write(None, FaultSite::MetricsWrite, &path, payload).unwrap();

        // ShortWrite: success reported, prefix landed.
        let plan = FaultPlan::new(4).with_rule(FaultSite::MetricsWrite, FaultKind::ShortWrite, 1.0);
        faulted_write(Some(&plan), FaultSite::MetricsWrite, &path, payload).unwrap();
        let written = std::fs::read(&path).unwrap();
        assert!(written.len() < payload.len());
        assert_eq!(&payload[..written.len()], &written[..]);

        // Ingest reads: Eio errors, BitFlip corrupts exactly one bit.
        std::fs::write(&path, payload).unwrap();
        let plan = FaultPlan::new(4).with_rule(FaultSite::IngestRead, FaultKind::Eio, 1.0);
        assert!(faulted_read(Some(&plan), FaultSite::IngestRead, &path).is_err());
        let plan = FaultPlan::new(4).with_rule(FaultSite::IngestRead, FaultKind::BitFlip, 1.0);
        let corrupted = faulted_read(Some(&plan), FaultSite::IngestRead, &path).unwrap();
        assert_eq!(corrupted.len(), payload.len());
        let flipped: u32 = corrupted.iter().zip(payload).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
        assert_eq!(faulted_read(None, FaultSite::IngestRead, &path).unwrap(), payload);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn positions_stay_in_bounds() {
        let plan = FaultPlan::new(3).with_rule(FaultSite::Write, FaultKind::BitFlip, 1.0);
        for len in [1usize, 2, 100, 4096] {
            plan.decide(FaultSite::Write);
            assert!(plan.position(FaultSite::Write, len) < len);
        }
        assert_eq!(plan.position(FaultSite::Write, 0), 0);
    }
}
