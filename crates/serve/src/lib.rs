//! Long-lived EMST serving — resident shard artifacts behind a keyed cache.
//!
//! Every other entry point in this workspace is a *batch* solve: points in,
//! tree out, state gone. A service answering heavy repeated traffic wants
//! the opposite: ingest a cloud **once**, keep its expensive intermediate
//! state resident, and answer each query with only query-proportional work.
//! [`ServeEngine`] is that engine. Per resident cloud it holds exactly the
//! state the sharded solver would otherwise rebuild per call —
//!
//! - the Morton-range [`emst_shard::ShardPlan`],
//! - every shard's BVH (with its 4-wide rope-linked collapse) and local
//!   MST, bundled as [`emst_shard::ShardArtifacts`],
//! - the durable cross-query merge accelerator
//!   ([`emst_shard::MergeAccel`]: floors + candidates learned by earlier
//!   merges of the same cloud) —
//!
//! keyed by [`CloudKey`]: the **content digest** of the points paired with
//! the shard count (see [`spill`] for the keying scheme). Admission is
//! bounded by [`ServeConfig::max_resident`]; over budget, the
//! least-recently-used cloud is **evicted to the sharded spill-file
//! format** and can be transparently reloaded (and rebuilt — the build is
//! deterministic, so reloaded answers are bit-identical) on its next query.
//!
//! Queries against a resident cloud skip the local phase entirely:
//!
//! - [`ServeEngine::emst`] re-runs only the cross-shard merge (the
//!   response's [`QueryResponse::build_work`] is zero on a hit, and its
//!   `query_work` shows merge-only traversal stats);
//! - [`ServeEngine::emst_subset`] re-merges only the touched shards,
//!   re-solving just the partially-covered ones
//!   ([`emst_shard::ShardArtifacts::merge_subset`]);
//! - [`ServeEngine::k_nearest`] answers from the resident per-shard BVHs;
//! - [`ServeEngine::hdbscan`] reuses a warm scratch pool via
//!   [`emst_hdbscan::Hdbscan::fit_scratch`].
//!
//! # The execution API
//!
//! Every verb — the four queries, cloud loading, stats, and the mutation
//! pair — is one [`ServeRequest`] executed by [`ServeEngine::execute`],
//! which applies the guard surface (admission control, per-query
//! deadline, panic isolation) uniformly. The named methods ([`emst`],
//! [`try_emst`], [`emst_by_key`], …) are thin wrappers that build the
//! request and unwrap the matching [`ServeResponse`] arm; the serve
//! REPL and the wire protocol ([`net::respond`]) dispatch through the
//! same `execute`, so in-process, REPL and network traffic are provably
//! one code path.
//!
//! [`emst`]: ServeEngine::emst
//! [`try_emst`]: ServeEngine::try_emst
//! [`emst_by_key`]: ServeEngine::emst_by_key
//!
//! # Incremental updates
//!
//! [`ServeRequest::Insert`] / [`ServeRequest::Delete`] mutate a resident
//! cloud *incrementally*: each changed point routes to its Morton shard
//! under the parent's plan, only the dirty shards re-solve
//! ([`emst_shard::ShardArtifacts::apply_update`]), clean shards keep
//! their BVHs, local MSTs and harvested accel floors (the bounds are
//! label-independent geometry, so surviving rows transfer verbatim), and
//! the exact cross-shard merge re-runs. The mutated cloud is a **new**
//! [`CloudKey`] (content digest changes) admitted alongside the parent,
//! so cache/spill/fault semantics are unchanged — the parent stays
//! servable and the edge-weight multiset of the child is bit-identical
//! to a from-scratch solve.
//!
//! # Concurrency
//!
//! Every query method takes `&self`: the engine is [`Sync`] and N threads
//! may query the same or different clouds simultaneously, with answers
//! bit-identical to a single-threaded engine. The split:
//!
//! - **Shared, read-mostly**: the resident list (`RwLock<Vec<Arc<_>>>`;
//!   queries take the read lock just long enough to clone an `Arc`,
//!   admission/eviction takes the write lock) and each resident's
//!   immutable points + artifacts.
//! - **Shared, write-merged**: each resident's [`emst_shard::MergeAccel`].
//!   A query copies it out under a read lock, runs the merge against the
//!   copy, and folds the round-1 harvest back in under a write lock —
//!   sound because any two queries that derive the same accel slot derive
//!   the same value (see the `MergeAccel` docs), so absorb order is
//!   irrelevant.
//! - **Per-thread**: Borůvka/merge scratch pools, checked out of a
//!   bounded free list per query and returned by an RAII guard on drop
//!   (also on the panic path), so warm queries still allocate nothing.
//! - **Single-flight builds**: concurrent requests for the same
//!   non-resident [`CloudKey`] coalesce on one build — one leader builds
//!   (outside all locks), the rest park on a condvar and re-check. The
//!   leader itself re-checks residency *after* winning its lease
//!   (double-checked locking): a thread that read "not resident", stalled,
//!   and won the next lease after the prior leader landed must serve the
//!   landed resident, not rebuild and admit a duplicate.
//!
//! All atomics (stats, LRU ticks) use relaxed ordering on purpose: they
//! are advisory counters and recency hints, and every correctness-bearing
//! handoff (artifacts, accel contents, resident list) goes through a
//! mutex/rwlock acquire-release pair.
//!
//! ```
//! use emst_datasets::{generate_2d, DatasetSpec};
//! use emst_exec::Threads;
//! use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};
//!
//! let pts = generate_2d(&DatasetSpec::uniform(800, 42));
//! let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
//!
//! let cold = engine.emst(&pts); // miss: plan + local solves + merge
//! assert_eq!(cold.outcome, CacheOutcome::Miss);
//! assert!(cold.build_work.iterations > 0);
//!
//! let warm = engine.emst(&pts); // hit: merge only, bit-identical edges
//! assert_eq!(warm.outcome, CacheOutcome::Hit);
//! assert!(warm.build_work.is_zero());
//! assert_eq!(warm.edges, cold.edges);
//!
//! // Mutating one coordinate changes the digest: no stale answers.
//! let mut other = pts.clone();
//! other[0][0] += 1.0;
//! assert_eq!(engine.emst(&other).outcome, CacheOutcome::Miss);
//! ```

pub mod fault;
pub mod net;
pub mod spill;

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use emst_bvh::TraversalStats;
use emst_core::{BoruvkaScratch, Edge, EmstConfig};
use emst_exec::counters::CounterSnapshot;
use emst_exec::{ExecSpace, PhaseTimings};
use emst_geometry::{Point, Scalar};
use emst_hdbscan::{Hdbscan, HdbscanResult};
use emst_obs::{Counter, Gauge, Histogram, QueryTrace, Registry, SpanRecord, TraceRing};
use emst_shard::{MergeAccel, MergeScratch, ShardArtifacts, ShardConfig, UpdateReport};
use parking_lot::{Condvar, Mutex, RwLock};

pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use net::{NetConfig, NetReply, NetSession, ServeServer};
pub use spill::{digest_points, CloudKey};

/// Configuration of a serving engine.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Morton-range shards per resident cloud (clamped to at least 1).
    pub shards: usize,
    /// Admission budget: maximum number of simultaneously resident clouds
    /// (clamped to at least 1). The least-recently-used cloud is spilled
    /// when a new one needs the slot.
    pub max_resident: usize,
    /// Configuration forwarded to every local solve.
    pub emst: EmstConfig,
    /// Solve a cloud's shards concurrently during ingest.
    pub parallel_shards: bool,
    /// Directory for eviction spill files. `None` (the default) derives a
    /// process-unique directory under the system temp dir, removed when
    /// the engine is dropped; a caller-provided directory is left alone.
    pub spill_dir: Option<PathBuf>,
    /// Record lock-free metrics and per-query traces (on by default; see
    /// [`ServeEngine::metrics_prometheus`] and
    /// [`ServeEngine::recent_traces`]). Off removes every instrumentation
    /// probe from the query paths — the uninstrumented baseline the
    /// benchmark's overhead measurement compares against.
    pub observability: bool,
    /// Secondary spill directory. When every retry against the primary
    /// spill dir fails, the write relocates here before the cloud is
    /// declared non-durable; reloads probe both directories. `None` (the
    /// default) disables relocation.
    pub fallback_spill_dir: Option<PathBuf>,
    /// Persist serialized artifacts (plan, per-shard BVHs, local MSTs,
    /// cross bounds) alongside the points in spill files, so a reload is a
    /// checksum-verified read instead of a rebuild. On by default; a
    /// corrupt or absent artifact section always degrades to the
    /// deterministic rebuild, never to wrong bits.
    pub spill_artifacts: bool,
    /// Retries per spill-write attempt *per directory*, with exponential
    /// backoff (1 ms base, doubling, capped at 20 ms). `0` means one
    /// attempt and no retry.
    pub spill_retries: u32,
    /// Per-query wall-clock budget for the fallible (`try_*` / `*_by_key`)
    /// EMST paths. Checked at merge-round boundaries: an over-budget query
    /// returns [`ServeError::DeadlineExceeded`] instead of a late answer.
    /// `None` (the default) disables deadlines.
    pub deadline: Option<Duration>,
    /// Admission control for the fallible query paths: more than this many
    /// in-flight guarded queries sheds the excess with
    /// [`ServeError::Overloaded`] instead of queueing. `0` (the default)
    /// disables shedding.
    pub max_in_flight: usize,
    /// Deterministic fault injection applied to every spill write/read
    /// (see [`fault`]). `None` (the default) runs clean; production
    /// configs leave this unset — it exists for chaos tests and the CLI's
    /// `--fault-plan`.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl ServeConfig {
    /// Default configuration with `shards` shards and a residency budget.
    pub fn new(shards: usize, max_resident: usize) -> Self {
        Self {
            shards,
            max_resident,
            emst: EmstConfig::default(),
            parallel_shards: true,
            spill_dir: None,
            observability: true,
            fallback_spill_dir: None,
            spill_artifacts: true,
            spill_retries: 3,
            deadline: None,
            max_in_flight: 0,
            fault_plan: None,
        }
    }
}

/// How the cache answered a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The cloud was resident: no build work at all.
    Hit,
    /// The cloud was unknown: ingested (plan + local solves) on this call.
    Miss,
    /// The cloud had been evicted: points reloaded from its (verified)
    /// spill file, artifacts restored from the spilled blob — or rebuilt
    /// deterministically when the blob is absent or corrupt. Either way
    /// the answers are bit-identical to the original build.
    Reloaded,
}

impl CacheOutcome {
    /// Lower-case name, as traces and the CLI report it.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Reloaded => "reload",
        }
    }
}

/// Lifetime cache statistics of an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered from resident artifacts.
    pub hits: u64,
    /// Queries that ingested a new cloud.
    pub misses: u64,
    /// Queries that reloaded an evicted cloud from its spill file.
    pub reloads: u64,
    /// Clouds evicted to spill files.
    pub evictions: u64,
    /// Eviction spill writes that failed (the cloud is dropped from
    /// durability: a later by-key query answers `UnknownKey`, never wrong
    /// data — but the loss is now counted and logged instead of silent).
    pub spill_failures: u64,
    /// Verified 64-bit digest collisions: admissions where a resident
    /// cloud shared the digest but not the bytes, forcing a salted key.
    pub digest_collisions: u64,
    /// Queries that parked on another thread's in-flight build of the
    /// same key instead of rebuilding it (single-flight coalescing); each
    /// also counts as a hit once the build lands.
    pub coalesced: u64,
    /// Spill-write attempts retried after a failure (backoff included).
    pub spill_retries: u64,
    /// Spill writes that relocated to the fallback directory after the
    /// primary directory's retries were exhausted.
    pub spill_relocations: u64,
    /// Reload reads rejected by verification — framing/section-checksum
    /// failures and key-digest mismatches. Every one of these is a
    /// would-have-been-wrong-bits event turned into a typed error.
    pub checksum_failures: u64,
    /// Reloads answered by restoring verified artifact bytes from the
    /// spill file (no rebuild ran).
    pub artifact_restores: u64,
    /// Reloads that fell back to the deterministic rebuild because the
    /// spill carried no intact artifact section.
    /// `artifact_restores + artifact_rebuilds == reloads` always.
    pub artifact_rebuilds: u64,
    /// Guarded queries that ran over their deadline budget and returned
    /// [`ServeError::DeadlineExceeded`] at a merge-round boundary.
    pub deadline_exceeded: u64,
    /// Guarded queries shed by admission control
    /// ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Guarded queries that panicked and were isolated to a
    /// [`ServeError::QueryPanic`] instead of unwinding the caller.
    pub query_panics: u64,
    /// Network requests that rode another identical in-flight request's
    /// execution instead of running themselves: same [`CloudKey`], same
    /// verb, same arguments, concurrent — all receive the one result's
    /// bytes (see [`net`]). Distinct from [`ServeStats::coalesced`], which
    /// counts single-flight *build* coalescing inside the engine.
    pub query_coalesced: u64,
    /// Incremental point insertions that derived and admitted (or hit) a
    /// child cloud ([`ServeRequest::Insert`]).
    pub inserts: u64,
    /// Incremental point deletions that derived and admitted (or hit) a
    /// child cloud ([`ServeRequest::Delete`]).
    pub deletes: u64,
}

impl ServeStats {
    /// Every stat as a `(name, value)` pair, in declaration order.
    ///
    /// The destructuring is deliberately exhaustive (no `..`): adding a
    /// field to [`ServeStats`] without extending this list is a compile
    /// error, so consumers that iterate the names — the CLI `stats`
    /// command, the metrics exporters — can never silently miss one.
    pub fn named_fields(&self) -> [(&'static str, u64); 18] {
        let ServeStats {
            hits,
            misses,
            reloads,
            evictions,
            spill_failures,
            digest_collisions,
            coalesced,
            spill_retries,
            spill_relocations,
            checksum_failures,
            artifact_restores,
            artifact_rebuilds,
            deadline_exceeded,
            shed,
            query_panics,
            query_coalesced,
            inserts,
            deletes,
        } = *self;
        [
            ("hits", hits),
            ("misses", misses),
            ("reloads", reloads),
            ("evictions", evictions),
            ("spill_failures", spill_failures),
            ("digest_collisions", digest_collisions),
            ("coalesced", coalesced),
            ("spill_retries", spill_retries),
            ("spill_relocations", spill_relocations),
            ("checksum_failures", checksum_failures),
            ("artifact_restores", artifact_restores),
            ("artifact_rebuilds", artifact_rebuilds),
            ("deadline_exceeded", deadline_exceeded),
            ("shed", shed),
            ("query_panics", query_panics),
            ("query_coalesced", query_coalesced),
            ("inserts", inserts),
            ("deletes", deletes),
        ]
    }
}

/// Errors of the handle-based (`*_by_key`) query paths.
#[derive(Debug)]
pub enum ServeError {
    /// The key is neither resident nor spilled — the cloud was never
    /// ingested (or its spill file was removed).
    UnknownKey(CloudKey),
    /// The spill file exists but cannot be read back.
    Spill(std::io::Error),
    /// The spill file's contents no longer digest to the key — on-disk
    /// corruption; the engine refuses to serve wrong bits.
    DigestMismatch(CloudKey),
    /// The query ran past its [`ServeConfig::deadline`] budget; detected
    /// at a merge-round boundary and returned instead of a late answer.
    DeadlineExceeded(CloudKey),
    /// Shed by admission control: [`ServeConfig::max_in_flight`] guarded
    /// queries were already running. Graceful degradation — retry later.
    Overloaded,
    /// The query panicked; the panic was contained to this query (scratch
    /// returned to the pool, no engine state poisoned) and its payload is
    /// carried here instead of unwinding the caller.
    QueryPanic(String),
    /// The request itself is malformed — an out-of-range or duplicate
    /// delete id, a mutation that would leave fewer than two points.
    /// Rejected before any engine state changes.
    InvalidRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownKey(k) => write!(f, "unknown cloud {k}"),
            ServeError::Spill(e) => write!(f, "spill file unreadable: {e}"),
            ServeError::DigestMismatch(k) => write!(f, "spill file for {k} fails its digest"),
            ServeError::DeadlineExceeded(k) => {
                write!(f, "query deadline exceeded merging cloud {k}")
            }
            ServeError::Overloaded => write!(f, "shed by admission control: too many in-flight"),
            ServeError::QueryPanic(msg) => write!(f, "query panicked: {msg}"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Response of an EMST (full or subset) query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The tree edges, in original point indices.
    pub edges: Vec<Edge>,
    /// Sum of (non-squared) edge weights.
    pub total_weight: f64,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
    /// Work spent building artifacts **on this call** — zero on a cache
    /// hit (the warm-query signature: the local phase did not run).
    pub build_work: CounterSnapshot,
    /// Work spent answering the query itself (merge traversals, and for
    /// subset queries any partial re-solves).
    pub query_work: CounterSnapshot,
    /// Wall-clock phases of this call (`plan`/`local` only when the cloud
    /// was built or rebuilt, `merge`/`merge.*` always).
    pub timings: PhaseTimings,
    /// Heap bytes the cloud's resident artifacts occupy.
    pub resident_bytes: usize,
}

/// Response of a k-nearest-neighbour query.
#[derive(Clone, Debug)]
pub struct KnnResponse {
    /// `(original point index, squared distance)`, ascending; see
    /// [`emst_shard::ShardArtifacts::k_nearest`] for the tie rule.
    pub neighbors: Vec<(u32, Scalar)>,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
    /// Work spent building artifacts on this call (zero on a hit).
    pub build_work: CounterSnapshot,
    /// Traversal work of the k-NN itself.
    pub query_work: CounterSnapshot,
}

/// Response of an HDBSCAN* query.
#[derive(Debug)]
pub struct HdbscanResponse {
    /// The full clustering output.
    pub result: HdbscanResult,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
}

/// How a request names its cloud: by sending the points (resolved by
/// content digest, ingesting on a miss) or by a [`CloudKey`] handle from
/// an earlier response (reloading from spill on demand).
#[derive(Clone, Copy, Debug)]
pub enum CloudRef<'a, const D: usize> {
    /// The full point cloud; digested and admitted if not yet resident.
    Points(&'a [Point<D>]),
    /// A previously minted key; errors with [`ServeError::UnknownKey`]
    /// when neither resident nor spilled.
    Key(CloudKey),
}

/// One typed serving request — the single argument of
/// [`ServeEngine::execute`], covering every verb the engine speaks.
/// The named convenience methods and both transports (REPL, wire) build
/// exactly these values, so behavior can never diverge per entry point.
#[derive(Debug)]
pub enum ServeRequest<'a, const D: usize> {
    /// Full EMST of the cloud (warm path: merge only).
    Emst {
        /// The cloud to solve.
        cloud: CloudRef<'a, D>,
    },
    /// Exact EMST of a subset of the cloud's points (distinct original
    /// indices), re-merging only the touched shards.
    Subset {
        /// The cloud to solve within.
        cloud: CloudRef<'a, D>,
        /// Distinct original point indices of the subset.
        subset: &'a [u32],
    },
    /// The `k` nearest ingested points to `query`.
    KNearest {
        /// The cloud to search.
        cloud: CloudRef<'a, D>,
        /// The query position.
        query: Point<D>,
        /// Number of neighbours.
        k: usize,
    },
    /// HDBSCAN* clustering of the cloud.
    Hdbscan {
        /// The cloud to cluster.
        cloud: CloudRef<'a, D>,
        /// Clustering parameters.
        params: Hdbscan,
    },
    /// Incremental insertion: append `points` to the cloud, delta-solve
    /// only the Morton shards they land in, and admit the result as a new
    /// cloud (the parent stays resident and servable).
    Insert {
        /// The parent cloud to extend.
        cloud: CloudRef<'a, D>,
        /// Points to append (their indices continue the parent's).
        points: &'a [Point<D>],
    },
    /// Incremental deletion: remove the points at `ids` (parent-cloud
    /// indices; survivors are compacted in order), delta-solve only the
    /// shards that lost points, and admit the result as a new cloud.
    Delete {
        /// The parent cloud to shrink.
        cloud: CloudRef<'a, D>,
        /// Distinct in-range parent point indices to remove.
        ids: &'a [u32],
    },
    /// Ingest a cloud (build + admit artifacts) without running a query.
    Load {
        /// The cloud to admit.
        points: &'a [Point<D>],
    },
    /// Lifetime cache statistics and residency accounting.
    Stats,
}

/// One typed serving response — each [`ServeRequest`] verb returns its
/// matching arm.
#[derive(Debug)]
pub enum ServeResponse<const D: usize> {
    /// Answer of [`ServeRequest::Emst`].
    Emst(QueryResponse),
    /// Answer of [`ServeRequest::Subset`].
    Subset(QueryResponse),
    /// Answer of [`ServeRequest::KNearest`].
    KNearest(KnnResponse),
    /// Answer of [`ServeRequest::Hdbscan`].
    Hdbscan(HdbscanResponse),
    /// Answer of [`ServeRequest::Insert`] / [`ServeRequest::Delete`].
    Mutated(MutateResponse<D>),
    /// Answer of [`ServeRequest::Load`].
    Loaded {
        /// The admitted cloud's key.
        key: CloudKey,
    },
    /// Answer of [`ServeRequest::Stats`].
    Stats(StatsResponse),
}

/// Response of an incremental mutation: the child cloud's identity, the
/// post-mutation point set, how much of the parent's work was reused,
/// and a full EMST answer over the child (which also warms its accel and
/// gives callers a check digest in one round trip).
#[derive(Clone, Debug)]
pub struct MutateResponse<const D: usize> {
    /// Key of the mutated (child) cloud — use it for follow-up queries.
    pub key: CloudKey,
    /// The child cloud's points (parent order, survivors compacted,
    /// inserts appended) — what a session should now consider "the"
    /// cloud.
    pub points: Vec<Point<D>>,
    /// Point count of the child cloud.
    pub n: usize,
    /// Plan-shard indices whose local solve re-ran. Empty when the child
    /// was already resident (a repeated identical mutation hits).
    pub dirty_shards: Vec<usize>,
    /// Non-empty shards whose BVH + local MST transferred verbatim.
    pub reused_shards: usize,
    /// The mutation changed the set of non-empty shards and fell back to
    /// a full (still deterministic) rebuild.
    pub full_rebuild: bool,
    /// Full EMST of the child cloud, merge-exact (edge-weight multiset
    /// bit-identical to a from-scratch solve of the same points).
    pub update: QueryResponse,
}

/// Response of [`ServeRequest::Stats`].
#[derive(Clone, Debug)]
pub struct StatsResponse {
    /// Number of currently resident clouds.
    pub resident: usize,
    /// Total heap bytes of resident artifacts + accelerators.
    pub resident_bytes: usize,
    /// Lifetime cache statistics.
    pub stats: ServeStats,
}

/// Internal shape of the two mutation verbs once argument validation has
/// produced the child point set.
enum Mutation<'a, const D: usize> {
    Insert(&'a [Point<D>]),
    Delete(&'a [u32]),
}

impl<const D: usize> Mutation<'_, D> {
    fn verb(&self) -> &'static str {
        match self {
            Mutation::Insert(_) => "insert",
            Mutation::Delete(_) => "delete",
        }
    }
}

/// One resident cloud. `key`, `points` and `artifacts` are immutable for
/// the resident's whole life (any thread may read them through the `Arc`);
/// the accelerator is the one shared-mutable piece and sits behind its own
/// lock; `last_used` is a recency hint.
struct Resident<const D: usize> {
    key: CloudKey,
    points: Vec<Point<D>>,
    artifacts: ShardArtifacts<D>,
    /// Durable floors/candidates shared by every merge of this cloud.
    /// Queries copy it out, merge against the copy, and `absorb` the
    /// harvest back — never holding this lock during traversal work.
    accel: RwLock<MergeAccel>,
    /// Tick of the last query that touched this resident. Ticks come from
    /// one `fetch_add` clock, so they are unique engine-wide (ties are
    /// impossible) and the LRU minimum is unambiguous. `fetch_max` keeps
    /// the slot exact under concurrent touches.
    last_used: AtomicU64,
}

/// Per-thread mutable query state, checked out of the engine's free pool
/// for the duration of one query.
struct QueryScratch {
    boruvka: BoruvkaScratch,
    merge: MergeScratch,
    accel: MergeAccel,
}

impl QueryScratch {
    fn new() -> Self {
        Self {
            boruvka: BoruvkaScratch::new(),
            merge: MergeScratch::new(),
            accel: MergeAccel::new(),
        }
    }
}

/// Upper bound on pooled scratch sets. The pool otherwise grows to the
/// peak query concurrency ever seen and each entry can retain a
/// full-cloud accel copy, so it must not grow without bound.
const MAX_POOLED_SCRATCH: usize = 32;

/// A checked-out [`QueryScratch`] that returns itself to the pool on drop
/// — including on the unwind path, so a panicking merge (a convergence
/// assert, an accel debug_assert) cannot permanently leak its scratch.
struct ScratchGuard<'a> {
    pool: &'a Mutex<Vec<QueryScratch>>,
    scratch: Option<QueryScratch>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        let mut pool = self.pool.lock();
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(self.scratch.take().expect("scratch present until drop"));
        }
    }
}

/// Rendezvous for single-flight builds: followers park on the condvar
/// until the leader marks the flight done.
struct BuildFlight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl BuildFlight {
    fn new() -> Self {
        Self { done: Mutex::new(false), cv: Condvar::new() }
    }

    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }

    fn finish(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }
}

/// Lifetime counters as atomics so `&self` queries can bump them; all
/// relaxed — see the module docs on ordering.
#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    reloads: AtomicU64,
    evictions: AtomicU64,
    spill_failures: AtomicU64,
    digest_collisions: AtomicU64,
    coalesced: AtomicU64,
    spill_retries: AtomicU64,
    spill_relocations: AtomicU64,
    checksum_failures: AtomicU64,
    artifact_restores: AtomicU64,
    artifact_rebuilds: AtomicU64,
    deadline_exceeded: AtomicU64,
    shed: AtomicU64,
    query_panics: AtomicU64,
    query_coalesced: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            reloads: self.reloads.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            spill_failures: self.spill_failures.load(Relaxed),
            digest_collisions: self.digest_collisions.load(Relaxed),
            coalesced: self.coalesced.load(Relaxed),
            spill_retries: self.spill_retries.load(Relaxed),
            spill_relocations: self.spill_relocations.load(Relaxed),
            checksum_failures: self.checksum_failures.load(Relaxed),
            artifact_restores: self.artifact_restores.load(Relaxed),
            artifact_rebuilds: self.artifact_rebuilds.load(Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Relaxed),
            shed: self.shed.load(Relaxed),
            query_panics: self.query_panics.load(Relaxed),
            query_coalesced: self.query_coalesced.load(Relaxed),
            inserts: self.inserts.load(Relaxed),
            deletes: self.deletes.load(Relaxed),
        }
    }
}

/// Capacity of the per-engine trace ring: enough to inspect a recent
/// burst of queries, bounded so a long-serving engine cannot grow.
const TRACE_CAPACITY: usize = 256;

/// The engine's observability bundle: a metrics [`Registry`] with every
/// handle pre-resolved (recording on the query path is relaxed-atomic,
/// never a name lookup), and the bounded ring of per-query traces. Built
/// once per engine when [`ServeConfig::observability`] is on.
struct ServeObs {
    registry: Registry,
    traces: TraceRing,
    /// Per-op-kind latency, `emst_serve_op_seconds{op="…"}`.
    op_emst: Arc<Histogram>,
    op_subset: Arc<Histogram>,
    op_knn: Arc<Histogram>,
    op_hdbscan: Arc<Histogram>,
    op_insert: Arc<Histogram>,
    op_delete: Arc<Histogram>,
    op_ingest: Arc<Histogram>,
    /// Cache events, `emst_serve_cache_events_total{event="…"}` —
    /// mirrors [`StatCells`] so the exposition needs no snapshot calls.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    reloads: Arc<Counter>,
    coalesced: Arc<Counter>,
    evictions: Arc<Counter>,
    spill_failures: Arc<Counter>,
    digest_collisions: Arc<Counter>,
    spill_retries: Arc<Counter>,
    spill_relocations: Arc<Counter>,
    checksum_failures: Arc<Counter>,
    artifact_restores: Arc<Counter>,
    artifact_rebuilds: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    shed: Arc<Counter>,
    query_panics: Arc<Counter>,
    query_coalesced: Arc<Counter>,
    inserts: Arc<Counter>,
    deletes: Arc<Counter>,
    /// Algorithmic work per [`CounterSnapshot`] field,
    /// `emst_serve_work_total{counter="…"}`, in `named_fields` order.
    work: [Arc<Counter>; 9],
    scratch_checkouts: Arc<Counter>,
    scratch_pool_size: Arc<Gauge>,
    resident_clouds: Arc<Gauge>,
    resident_bytes: Arc<Gauge>,
    /// Acquisition waits on the shared locks,
    /// `emst_serve_lock_wait_seconds{lock="…"}`.
    lock_residents_read: Arc<Histogram>,
    lock_residents_write: Arc<Histogram>,
    lock_accel_read: Arc<Histogram>,
    lock_accel_write: Arc<Histogram>,
    lease_wait: Arc<Histogram>,
    spill_write: Arc<Histogram>,
    eviction: Arc<Histogram>,
    /// Reload-path latencies split by how the artifacts came back,
    /// `emst_serve_reload_seconds{path="restore"|"rebuild"}` — the seam
    /// the benchmark's artifact-restore-vs-rebuild comparison reads.
    reload_restore: Arc<Histogram>,
    reload_rebuild: Arc<Histogram>,
}

impl ServeObs {
    fn new() -> Self {
        let registry = Registry::new();
        let op = |o: &str| registry.histogram(&format!("emst_serve_op_seconds{{op=\"{o}\"}}"));
        let event =
            |e: &str| registry.counter(&format!("emst_serve_cache_events_total{{event=\"{e}\"}}"));
        let lock =
            |l: &str| registry.histogram(&format!("emst_serve_lock_wait_seconds{{lock=\"{l}\"}}"));
        let work = CounterSnapshot::default().named_fields().map(|(name, _)| {
            registry.counter(&format!("emst_serve_work_total{{counter=\"{name}\"}}"))
        });
        Self {
            traces: TraceRing::new(TRACE_CAPACITY),
            op_emst: op("emst"),
            op_subset: op("subset"),
            op_knn: op("knn"),
            op_hdbscan: op("hdbscan"),
            op_insert: op("insert"),
            op_delete: op("delete"),
            op_ingest: op("ingest"),
            hits: event("hit"),
            misses: event("miss"),
            reloads: event("reload"),
            coalesced: event("coalesced"),
            evictions: event("eviction"),
            spill_failures: event("spill_failure"),
            digest_collisions: event("digest_collision"),
            spill_retries: event("spill_retry"),
            spill_relocations: event("spill_relocation"),
            checksum_failures: event("checksum_failure"),
            artifact_restores: event("artifact_restore"),
            artifact_rebuilds: event("artifact_rebuild"),
            deadline_exceeded: event("deadline_exceeded"),
            shed: event("shed"),
            query_panics: event("query_panic"),
            query_coalesced: event("query_coalesced"),
            inserts: event("insert"),
            deletes: event("delete"),
            work,
            scratch_checkouts: registry.counter("emst_serve_scratch_checkouts_total"),
            scratch_pool_size: registry.gauge("emst_serve_scratch_pool_size"),
            resident_clouds: registry.gauge("emst_serve_resident_clouds"),
            resident_bytes: registry.gauge("emst_serve_resident_bytes"),
            lock_residents_read: lock("residents.read"),
            lock_residents_write: lock("residents.write"),
            lock_accel_read: lock("accel.read"),
            lock_accel_write: lock("accel.write"),
            lease_wait: registry.histogram("emst_serve_lease_wait_seconds"),
            spill_write: registry.histogram("emst_serve_spill_write_seconds"),
            eviction: registry.histogram("emst_serve_eviction_seconds"),
            reload_restore: registry.histogram("emst_serve_reload_seconds{path=\"restore\"}"),
            reload_rebuild: registry.histogram("emst_serve_reload_seconds{path=\"rebuild\"}"),
            registry,
        }
    }

    fn op_histogram(&self, op: &str) -> &Histogram {
        match op {
            "emst" => &self.op_emst,
            "subset" => &self.op_subset,
            "knn" => &self.op_knn,
            "hdbscan" => &self.op_hdbscan,
            "insert" => &self.op_insert,
            "delete" => &self.op_delete,
            _ => &self.op_ingest,
        }
    }
}

/// The serving engine. See the crate docs — in particular the
/// "Concurrency" section for what is shared and what is per-thread.
pub struct ServeEngine<S: ExecSpace, const D: usize> {
    space: S,
    config: ServeConfig,
    residents: RwLock<Vec<Arc<Resident<D>>>>,
    /// Monotone recency clock; `fetch_add` hands every caller a distinct
    /// tick, so two residents can never tie on `last_used`.
    clock: AtomicU64,
    stats: StatCells,
    scratch_pool: Mutex<Vec<QueryScratch>>,
    builds: Mutex<HashMap<CloudKey, Arc<BuildFlight>>>,
    spill_dir: PathBuf,
    /// Whether `spill_dir` is engine-owned (removed on drop).
    owns_spill_dir: bool,
    /// In-flight guarded queries, for [`ServeConfig::max_in_flight`].
    in_flight: AtomicU64,
    /// Metrics + traces; `None` when [`ServeConfig::observability`] is
    /// off, which compiles every probe down to a branch on a `None`.
    obs: Option<ServeObs>,
}

/// Removes the flight from the in-flight map and releases its followers
/// when dropped — including on an error return or a panicking build, so a
/// dead leader can never wedge its followers.
struct FlightLease<'a, S: ExecSpace, const D: usize> {
    engine: &'a ServeEngine<S, D>,
    key: CloudKey,
    flight: Arc<BuildFlight>,
}

impl<S: ExecSpace, const D: usize> Drop for FlightLease<'_, S, D> {
    fn drop(&mut self) {
        self.engine.builds.lock().remove(&self.key);
        self.flight.finish();
    }
}

/// Outcome of one pass over the resident list for a `(digest, K)` pair.
enum Lookup<const D: usize> {
    /// A resident whose points verified equal byte-for-byte.
    Hit(Arc<Resident<D>>),
    /// No verified resident; admit under this key (salted past any
    /// colliding residents).
    Vacant(CloudKey),
}

impl<S: ExecSpace, const D: usize> ServeEngine<S, D> {
    /// Creates an engine on `space`. Nothing is resident yet; clouds are
    /// admitted by their first query (or [`Self::ingest`]).
    pub fn new(space: S, config: ServeConfig) -> Self {
        let (spill_dir, owns) = match &config.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => {
                static COUNTER: AtomicU64 = AtomicU64::new(0);
                let unique = COUNTER.fetch_add(1, Relaxed);
                let dir = std::env::temp_dir()
                    .join(format!("emst-serve-{}-{unique}", std::process::id()));
                (dir, true)
            }
        };
        let obs = config.observability.then(ServeObs::new);
        Self {
            space,
            config,
            residents: RwLock::new(vec![]),
            clock: AtomicU64::new(0),
            stats: StatCells::default(),
            scratch_pool: Mutex::new(vec![]),
            builds: Mutex::new(HashMap::new()),
            spill_dir,
            owns_spill_dir: owns,
            in_flight: AtomicU64::new(0),
            obs,
        }
    }

    /// The key `points` would be served under (content digest + `K`).
    pub fn key(&self, points: &[Point<D>]) -> CloudKey {
        CloudKey::minted(digest_points(points), self.num_shards())
    }

    /// Lifetime cache statistics.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Whether this engine records metrics and traces
    /// ([`ServeConfig::observability`]).
    pub fn observability_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// The engine's metrics registry, for callers that want to register
    /// their own counters (e.g. the CLI's metrics-file failure counter)
    /// into the same exposition. `None` when observability is off.
    pub fn obs_registry(&self) -> Option<&Registry> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Prometheus-style text exposition of every engine metric (per-op
    /// latency histograms with p50/p95/p99, cache events, work counters,
    /// lock waits, pool/resident gauges). Empty when observability is off.
    pub fn metrics_prometheus(&self) -> String {
        match &self.obs {
            Some(obs) => {
                self.refresh_gauges(obs);
                obs.registry.render_prometheus()
            }
            None => String::new(),
        }
    }

    /// The same metrics as a JSON document (counters, gauges, histogram
    /// summaries). `{}` when observability is off.
    pub fn metrics_json(&self) -> String {
        match &self.obs {
            Some(obs) => {
                self.refresh_gauges(obs);
                obs.registry.render_json()
            }
            None => "{}\n".to_string(),
        }
    }

    /// The `n` most recent per-query traces, newest first. Empty when
    /// observability is off.
    pub fn recent_traces(&self, n: usize) -> Vec<QueryTrace> {
        self.obs.as_ref().map(|o| o.traces.recent(n)).unwrap_or_default()
    }

    /// Gauges are sampled at export time (their values are cheap reads of
    /// engine state, not events) so an exposition is always current.
    fn refresh_gauges(&self, obs: &ServeObs) {
        obs.resident_clouds.set(self.num_resident() as u64);
        obs.resident_bytes.set(self.resident_bytes() as u64);
        obs.scratch_pool_size.set(self.scratch_pool.lock().len() as u64);
    }

    /// Runs `f` against the observability bundle when it exists — the
    /// single gate every instrumentation probe sits behind.
    #[inline]
    fn obs_event(&self, f: impl FnOnce(&ServeObs)) {
        if let Some(obs) = &self.obs {
            f(obs);
        }
    }

    /// A timestamp only when observability is on, so the off path never
    /// pays for a clock read.
    #[inline]
    fn obs_now(&self) -> Option<Instant> {
        self.obs.as_ref().map(|_| Instant::now())
    }

    /// Counts one network-level same-key query coalescing event: a request
    /// that received an identical in-flight request's result bytes instead
    /// of executing (see [`net`]).
    pub(crate) fn count_query_coalesced(&self) {
        self.stats.query_coalesced.fetch_add(1, Relaxed);
        self.obs_event(|o| o.query_coalesced.inc());
    }

    /// Counts (and logs) one detected-corruption event — the accounting
    /// behind the "never wrong bits" guarantee: every rejected read shows
    /// up here instead of in an answer.
    fn count_checksum_failure(&self, key: CloudKey, what: &str) {
        self.stats.checksum_failures.fetch_add(1, Relaxed);
        self.obs_event(|o| o.checksum_failures.inc());
        emst_obs::log::warn(
            "emst-serve",
            "spill verification failed",
            &[("key", &key.to_string()), ("detail", what)],
        );
    }

    /// Bridges a query's algorithmic work report into the per-counter
    /// metrics family.
    fn record_work(&self, work: &CounterSnapshot) {
        if let Some(obs) = &self.obs {
            for ((_, v), c) in work.named_fields().iter().zip(obs.work.iter()) {
                c.add(*v);
            }
        }
    }

    /// Records the finished query's latency and pushes its trace.
    fn finish_trace(
        &self,
        op: &'static str,
        key: CloudKey,
        outcome: CacheOutcome,
        start: Option<Instant>,
        spans: Vec<SpanRecord>,
    ) {
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            let total = start.elapsed();
            obs.op_histogram(op).record(total);
            obs.traces.push(QueryTrace {
                seq: 0,
                op,
                key: key.to_string(),
                outcome: outcome.as_str(),
                total_s: total.as_secs_f64(),
                spans,
            });
        }
    }

    /// Number of currently resident clouds.
    pub fn num_resident(&self) -> usize {
        self.residents.read().len()
    }

    /// Keys of the resident clouds, most recently used first. The sort is
    /// over at most `max_resident` snapshot pairs, and unique ticks (see
    /// `clock`) make the order total — no tie to break arbitrarily.
    pub fn resident_keys(&self) -> Vec<CloudKey> {
        let mut v: Vec<(u64, CloudKey)> =
            self.residents.read().iter().map(|r| (r.last_used.load(Relaxed), r.key)).collect();
        v.sort_by_key(|&(used, _)| std::cmp::Reverse(used));
        v.into_iter().map(|(_, k)| k).collect()
    }

    /// Total heap bytes of all resident state (artifacts + accelerators).
    pub fn resident_bytes(&self) -> usize {
        self.residents
            .read()
            .iter()
            .map(|r| r.artifacts.resident_bytes() + r.accel.read().resident_bytes())
            .sum()
    }

    fn num_shards(&self) -> usize {
        self.config.shards.max(1)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    fn touch(&self, r: &Resident<D>) {
        // `fetch_max`, not `store`: two racing touches keep the later
        // tick, so recency stays exact under concurrency.
        r.last_used.fetch_max(self.tick(), Relaxed);
    }

    fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            shards: self.num_shards(),
            emst: self.config.emst,
            parallel_shards: self.config.parallel_shards,
        }
    }

    fn checkout(&self) -> ScratchGuard<'_> {
        let (scratch, pooled) = {
            let mut pool = self.scratch_pool.lock();
            (pool.pop(), pool.len())
        };
        let scratch = scratch.unwrap_or_else(QueryScratch::new);
        self.obs_event(|o| {
            o.scratch_checkouts.inc();
            o.scratch_pool_size.set(pooled as u64);
        });
        ScratchGuard { pool: &self.scratch_pool, scratch: Some(scratch) }
    }

    /// One verified scan of the resident list for `(digest, K)`: a content
    /// match is a hit; otherwise the vacant key's salt skips past every
    /// colliding resident so two distinct clouds never alias.
    fn lookup(&self, digest: u64, points: &[Point<D>]) -> Lookup<D> {
        let shards = self.num_shards();
        let wait = self.obs_now();
        let residents = self.residents.read();
        if let (Some(obs), Some(wait)) = (&self.obs, wait) {
            obs.lock_residents_read.record(wait.elapsed());
        }
        let mut salt = 0u32;
        for r in residents.iter() {
            if r.key.digest != digest || r.key.shards != shards {
                continue;
            }
            // Digest equality is necessary but not sufficient: verify the
            // bytes (cheap at resident scale next to one merge round).
            if r.points.len() == points.len() && r.points == points {
                self.touch(r);
                return Lookup::Hit(Arc::clone(r));
            }
            salt = salt.max(r.key.salt + 1);
        }
        Lookup::Vacant(CloudKey { digest, shards, salt })
    }

    /// Extends `key.salt` past any spill file owned by a *different*
    /// cloud, so salts stay durable across eviction: without the probe, a
    /// distinct colliding cloud admitted after the original was spilled
    /// would claim salt 0, and its own eviction would overwrite the
    /// original's spill file — which a later by-key reload would then pass
    /// off as the original (a true collision shares the digest, so the
    /// reload digest check cannot catch it). A spill whose contents equal
    /// `points` is this cloud's own earlier eviction: its salt is reused.
    /// Unreadable or corrupt spill files are conservatively skipped.
    fn durable_salt(&self, mut key: CloudKey, points: &[Point<D>]) -> CloudKey {
        // Bounded so a spill dir that errors on every open (not per-file
        // corruption — e.g. permissions) cannot loop forever; past the
        // bound the eviction write itself will fail and be counted. Both
        // spill directories are probed: a relocated spill claims its salt
        // just as firmly as a primary one.
        'salts: for _ in 0..1024 {
            for dir in self.spill_dirs() {
                match spill::read_spill::<D>(dir, key, self.fault_plan()) {
                    Ok(None) => {}
                    Ok(Some(existing)) if existing.points == points => return key,
                    Ok(Some(_)) | Err(_) => {
                        key.salt += 1;
                        continue 'salts;
                    }
                }
            }
            return key;
        }
        key
    }

    /// Spill directories in probe/write order: primary, then fallback.
    fn spill_dirs(&self) -> impl Iterator<Item = &Path> {
        std::iter::once(self.spill_dir.as_path()).chain(self.config.fallback_spill_dir.as_deref())
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        self.config.fault_plan.as_deref()
    }

    /// Durable spill write: capped-exponential-backoff retries
    /// ([`ServeConfig::spill_retries`]; 1 ms base, doubling, ≤ 20 ms per
    /// sleep) against the primary directory, then the same ladder against
    /// the fallback directory. Errs only when every attempt in every
    /// directory failed — the caller then counts the durability loss.
    fn write_spill_durable(
        &self,
        key: CloudKey,
        points: &[Point<D>],
        artifacts: Option<&[u8]>,
    ) -> std::io::Result<()> {
        let attempts = u64::from(self.config.spill_retries) + 1;
        let mut last_err = None;
        for (which, dir) in self.spill_dirs().enumerate() {
            for attempt in 0..attempts {
                if attempt > 0 {
                    self.stats.spill_retries.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.spill_retries.inc());
                    std::thread::sleep(Duration::from_millis((1u64 << (attempt - 1)).min(20)));
                }
                match spill::write_spill(dir, key, points, artifacts, self.fault_plan()) {
                    Ok(()) => {
                        if which > 0 {
                            self.stats.spill_relocations.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.spill_relocations.inc());
                            emst_obs::log::warn(
                                "emst-serve",
                                "spill relocated to fallback dir",
                                &[("key", &key.to_string()), ("dir", &dir.display().to_string())],
                            );
                        }
                        return Ok(());
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        Err(last_err.expect("at least one write attempt ran"))
    }

    /// Joins (or starts) the single-flight build of `key`: `Err(flight)`
    /// means another thread is already building — park on it and re-check;
    /// `Ok(lease)` makes the caller the leader.
    fn begin_flight(&self, key: CloudKey) -> Result<FlightLease<'_, S, D>, Arc<BuildFlight>> {
        let mut builds = self.builds.lock();
        if let Some(flight) = builds.get(&key) {
            return Err(Arc::clone(flight));
        }
        let flight = Arc::new(BuildFlight::new());
        builds.insert(key, Arc::clone(&flight));
        Ok(FlightLease { engine: self, key, flight })
    }

    /// Builds artifacts for `points` (outside all engine locks) and admits
    /// the resident, evicting LRU clouds first when over budget.
    fn build_and_admit(
        &self,
        key: CloudKey,
        points: Vec<Point<D>>,
        spans: &mut Vec<SpanRecord>,
    ) -> (Arc<Resident<D>>, CounterSnapshot, PhaseTimings) {
        let built = self.obs_now();
        let artifacts = ShardArtifacts::build(&self.space, &points, &self.shard_config());
        let build_work = artifacts.build_work();
        let build_timings = artifacts.build_timings().clone();
        if let Some(built) = built {
            spans.push(SpanRecord {
                name: "build",
                secs: built.elapsed().as_secs_f64(),
                fields: vec![
                    ("points", points.len() as u64),
                    ("iterations", build_work.iterations),
                    ("distances", build_work.distance_computations),
                ],
            });
        }
        (self.admit(key, points, artifacts, spans), build_work, build_timings)
    }

    /// Admits already-built (or restored) artifacts as a resident,
    /// evicting LRU clouds first when over budget.
    fn admit(
        &self,
        key: CloudKey,
        points: Vec<Point<D>>,
        artifacts: ShardArtifacts<D>,
        spans: &mut Vec<SpanRecord>,
    ) -> Arc<Resident<D>> {
        let accel = artifacts.new_accel();
        let resident = Arc::new(Resident {
            key,
            points,
            artifacts,
            accel: RwLock::new(accel),
            last_used: AtomicU64::new(self.tick()),
        });
        let mut victims = Vec::new();
        {
            let wait = self.obs_now();
            let mut residents = self.residents.write();
            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                obs.lock_residents_write.record(wait.elapsed());
            }
            let budget = self.config.max_resident.max(1);
            while residents.len() >= budget {
                let lru = residents
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.last_used.load(Relaxed))
                    .map(|(i, _)| i)
                    .expect("residents is non-empty");
                let victim = residents.swap_remove(lru);
                // Single-flight means at most one build per key is ever in
                // flight, and the leader re-checks residency after winning
                // its lease — so a key is only ever admitted while no
                // resident holds it, and an eviction racing a re-admission
                // of the same key cannot pick the key being admitted.
                assert_ne!(victim.key, key, "evicting the key being admitted");
                victims.push(victim);
            }
            residents.push(Arc::clone(&resident));
            let count = residents.len() as u64;
            self.obs_event(|o| o.resident_clouds.set(count));
        }
        // Spill writes (disk I/O, potentially many MB) happen outside the
        // residents lock — the victim `Arc`s keep the points alive, and
        // stalling every concurrent query on a file write would defeat the
        // read-mostly design. The window where a victim is neither
        // resident nor spilled only costs a transient `UnknownKey` on its
        // key, never wrong data.
        for victim in victims {
            let evicted = self.obs_now();
            let artifact_bytes = self.config.spill_artifacts.then(|| {
                let mut bytes = Vec::new();
                victim.artifacts.serialize_into(&mut bytes);
                bytes
            });
            let written =
                self.write_spill_durable(victim.key, &victim.points, artifact_bytes.as_deref());
            if let (Some(obs), Some(evicted)) = (&self.obs, evicted) {
                obs.spill_write.record(evicted.elapsed());
            }
            if let Err(e) = written {
                // A failed write only costs a later `UnknownKey`, never
                // wrong data — but it must not be silent.
                self.stats.spill_failures.fetch_add(1, Relaxed);
                self.obs_event(|o| o.spill_failures.inc());
                emst_obs::log::warn(
                    "emst-serve",
                    "spill write failed",
                    &[("key", &victim.key.to_string()), ("error", &e.to_string())],
                );
            }
            self.stats.evictions.fetch_add(1, Relaxed);
            if let (Some(obs), Some(evicted)) = (&self.obs, evicted) {
                let secs = evicted.elapsed().as_secs_f64();
                obs.evictions.inc();
                obs.eviction.record_secs(secs);
                spans.push(SpanRecord {
                    name: "spill",
                    secs,
                    fields: vec![("points", victim.points.len() as u64)],
                });
            }
        }
        resident
    }

    /// Resolves `points` to a resident, admitting on a miss (coalescing
    /// concurrent misses for the same key onto one build).
    fn resolve(
        &self,
        points: &[Point<D>],
        spans: &mut Vec<SpanRecord>,
    ) -> (Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings) {
        let digested = self.obs_now();
        let digest = digest_points(points);
        if let Some(digested) = digested {
            spans.push(SpanRecord {
                name: "digest",
                secs: digested.elapsed().as_secs_f64(),
                fields: vec![("points", points.len() as u64)],
            });
        }
        self.resolve_digest_traced(digest, points, spans)
    }

    /// [`Self::resolve`] with the digest supplied by the caller — the seam
    /// the collision tests use to alias two distinct clouds.
    #[cfg(test)]
    fn resolve_digest(
        &self,
        digest: u64,
        points: &[Point<D>],
    ) -> (Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings) {
        self.resolve_digest_traced(digest, points, &mut Vec::new())
    }

    fn resolve_digest_traced(
        &self,
        digest: u64,
        points: &[Point<D>],
        spans: &mut Vec<SpanRecord>,
    ) -> (Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings) {
        let mut waited = false;
        loop {
            let key = match self.lookup(digest, points) {
                Lookup::Hit(r) => {
                    self.stats.hits.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.hits.inc());
                    if waited {
                        self.stats.coalesced.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.coalesced.inc());
                    }
                    return (r, CacheOutcome::Hit, CounterSnapshot::default(), PhaseTimings::new());
                }
                Lookup::Vacant(key) => key,
            };
            match self.begin_flight(key) {
                Err(flight) => {
                    let parked = self.obs_now();
                    flight.wait();
                    if let (Some(obs), Some(parked)) = (&self.obs, parked) {
                        let d = parked.elapsed();
                        obs.lease_wait.record(d);
                        spans.push(SpanRecord::new("lease.wait", d.as_secs_f64()));
                    }
                    waited = true;
                }
                Ok(_lease) => {
                    // Double-check under the lease: between our lookup and
                    // winning the flight, the previous leader may have
                    // landed this very key and dropped its flight. Without
                    // the re-check the late winner would rebuild and admit
                    // a duplicate resident — or, under salted keys, admit
                    // a *distinct* cloud at an already-taken salt.
                    match self.lookup(digest, points) {
                        Lookup::Hit(r) => {
                            self.stats.hits.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.hits.inc());
                            if waited {
                                self.stats.coalesced.fetch_add(1, Relaxed);
                                self.obs_event(|o| o.coalesced.inc());
                            }
                            return (
                                r,
                                CacheOutcome::Hit,
                                CounterSnapshot::default(),
                                PhaseTimings::new(),
                            );
                        }
                        // A colliding resident landed meanwhile and moved
                        // the free salt: drop this lease (releasing any
                        // followers to re-check) and retry with fresh keys.
                        Lookup::Vacant(fresh) if fresh != key => continue,
                        Lookup::Vacant(_) => {}
                    }
                    let key = self.durable_salt(key, points);
                    self.stats.misses.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.misses.inc());
                    if key.salt != 0 {
                        self.stats.digest_collisions.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.digest_collisions.inc());
                        emst_obs::log::warn(
                            "emst-serve",
                            "verified digest collision, admitting under salted key",
                            &[("key", &key.to_string()), ("salt", &key.salt.to_string())],
                        );
                    }
                    let (r, work, timings) = self.build_and_admit(key, points.to_vec(), spans);
                    return (r, CacheOutcome::Miss, work, timings);
                }
            }
        }
    }

    /// Resolves a key to a resident, reloading its spill on demand.
    fn resolve_key(
        &self,
        key: CloudKey,
        spans: &mut Vec<SpanRecord>,
    ) -> Result<(Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings), ServeError> {
        // This engine's artifacts are always built with its own shard
        // count, so a key carrying any other `K` (say, minted by an engine
        // with a different config against a shared spill directory) can
        // never be served here — rebuilding would silently register a
        // `config.shards` partition under the foreign key.
        if key.shards != self.num_shards() {
            return Err(ServeError::UnknownKey(key));
        }
        let mut waited = false;
        loop {
            if let Some(r) = self.residents.read().iter().find(|r| r.key == key) {
                self.stats.hits.fetch_add(1, Relaxed);
                self.obs_event(|o| o.hits.inc());
                if waited {
                    self.stats.coalesced.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.coalesced.inc());
                }
                self.touch(r);
                return Ok((
                    Arc::clone(r),
                    CacheOutcome::Hit,
                    CounterSnapshot::default(),
                    PhaseTimings::new(),
                ));
            }
            match self.begin_flight(key) {
                Err(flight) => {
                    let parked = self.obs_now();
                    flight.wait();
                    if let (Some(obs), Some(parked)) = (&self.obs, parked) {
                        let d = parked.elapsed();
                        obs.lease_wait.record(d);
                        spans.push(SpanRecord::new("lease.wait", d.as_secs_f64()));
                    }
                    waited = true;
                }
                Ok(_lease) => {
                    // Double-check under the lease (see `resolve_digest`):
                    // the previous leader may have admitted this key
                    // between our residency check and winning the flight —
                    // reloading now would admit a duplicate resident.
                    if let Some(r) = self.residents.read().iter().find(|r| r.key == key) {
                        self.stats.hits.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.hits.inc());
                        if waited {
                            self.stats.coalesced.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.coalesced.inc());
                        }
                        self.touch(r);
                        return Ok((
                            Arc::clone(r),
                            CacheOutcome::Hit,
                            CounterSnapshot::default(),
                            PhaseTimings::new(),
                        ));
                    }
                    // Errors drop the lease, releasing any followers to
                    // retry (and fail) for themselves. The reload
                    // degradation ladder: primary read → fallback read →
                    // artifact restore → deterministic rebuild → typed
                    // error. Corruption at any rung is *detected*
                    // (section checksums, key digest), counted, and
                    // degrades to the next rung — never decoded into
                    // wrong bits.
                    let reload_started = self.obs_now();
                    let mut corrupt = false;
                    let mut io_err: Option<std::io::Error> = None;
                    let mut found: Option<spill::SpillContents<D>> = None;
                    for dir in self.spill_dirs() {
                        match spill::read_spill::<D>(dir, key, self.fault_plan()) {
                            Ok(Some(c)) => {
                                if digest_points(&c.points) == key.digest {
                                    found = Some(c);
                                    break;
                                }
                                self.count_checksum_failure(key, "points digest mismatch");
                                corrupt = true;
                            }
                            Ok(None) => {}
                            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                                self.count_checksum_failure(key, "spill frame corrupt");
                                corrupt = true;
                            }
                            Err(e) => io_err = Some(e),
                        }
                    }
                    let contents = match found {
                        Some(c) => c,
                        None => {
                            return Err(if corrupt {
                                ServeError::DigestMismatch(key)
                            } else if let Some(e) = io_err {
                                ServeError::Spill(e)
                            } else {
                                ServeError::UnknownKey(key)
                            });
                        }
                    };
                    self.stats.reloads.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.reloads.inc());
                    if contents.artifact_corrupt {
                        self.count_checksum_failure(key, "artifact section corrupt");
                    }
                    // Artifact restore is best-effort: the blob decodes
                    // with full structural validation, and its point count
                    // must match the verified points. Anything short of
                    // that rebuilds — same bits, more work.
                    let restored = contents.artifacts.as_deref().and_then(|bytes| {
                        match ShardArtifacts::<D>::deserialize(bytes) {
                            Ok(a) if a.num_points() == contents.points.len() => Some(a),
                            Ok(_) | Err(_) => {
                                self.count_checksum_failure(key, "artifact blob invalid");
                                None
                            }
                        }
                    });
                    let (r, work, timings) = match restored {
                        Some(artifacts) => {
                            self.stats.artifact_restores.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.artifact_restores.inc());
                            let r = self.admit(key, contents.points, artifacts, spans);
                            if let (Some(obs), Some(t)) = (&self.obs, reload_started) {
                                obs.reload_restore.record(t.elapsed());
                            }
                            (r, CounterSnapshot::default(), PhaseTimings::new())
                        }
                        None => {
                            self.stats.artifact_rebuilds.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.artifact_rebuilds.inc());
                            let out = self.build_and_admit(key, contents.points, spans);
                            if let (Some(obs), Some(t)) = (&self.obs, reload_started) {
                                obs.reload_rebuild.record(t.elapsed());
                            }
                            out
                        }
                    };
                    return Ok((r, CacheOutcome::Reloaded, work, timings));
                }
            }
        }
    }

    fn answer_emst_deadline(
        &self,
        r: &Resident<D>,
        outcome: CacheOutcome,
        build_work: CounterSnapshot,
        build_timings: PhaseTimings,
        spans: &mut Vec<SpanRecord>,
        deadline: Option<Instant>,
    ) -> Result<QueryResponse, ServeError> {
        let mut scratch = self.checkout();
        // One reborrow through the guard so the borrow checker can split
        // `scratch.merge` / `scratch.accel` below.
        let scratch = &mut *scratch;
        // Copy-out / merge / absorb-back: the accel lock is only held for
        // the two memcpy-scale critical sections, never across traversals.
        {
            let wait = self.obs_now();
            let accel = r.accel.read();
            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                obs.lock_accel_read.record(wait.elapsed());
            }
            scratch.accel.copy_from(&accel);
        }
        let merged = match r.artifacts.merge_accel_deadline(
            &self.space,
            self.config.emst.traversal,
            &mut scratch.merge,
            &mut scratch.accel,
            deadline,
        ) {
            Ok(merged) => merged,
            Err(_) => {
                // Over budget at a round boundary. The accel copy may hold
                // a partial round's learning; it is simply not absorbed —
                // the shared accel stays exactly as it was, and the
                // scratch guard returns the pools on drop.
                self.stats.deadline_exceeded.fetch_add(1, Relaxed);
                self.obs_event(|o| o.deadline_exceeded.inc());
                return Err(ServeError::DeadlineExceeded(r.key));
            }
        };
        if self.obs.is_some() {
            for d in &merged.stats.round_details {
                spans.push(SpanRecord {
                    name: "merge.round",
                    secs: d.secs,
                    fields: vec![
                        ("round", u64::from(d.round)),
                        ("queries", d.queries),
                        ("boundary", d.boundary),
                        ("nodes", d.stats.nodes),
                        ("leaves", d.stats.leaves),
                        ("distances", d.stats.distances),
                        ("skipped", d.stats.skipped),
                        ("rope_hops", d.stats.rope_hops),
                    ],
                });
            }
        }
        {
            let wait = self.obs_now();
            let mut accel = r.accel.write();
            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                obs.lock_accel_write.record(wait.elapsed());
            }
            let absorbed = self.obs_now();
            accel.absorb(&scratch.accel);
            if let Some(absorbed) = absorbed {
                spans.push(SpanRecord::new("absorb", absorbed.elapsed().as_secs_f64()));
            }
        }
        let mut timings = build_timings;
        timings.absorb(&merged.stats.timings);
        Ok(QueryResponse {
            edges: merged.edges,
            total_weight: merged.total_weight,
            outcome,
            key: r.key,
            build_work,
            query_work: merged.stats.work,
            timings,
            resident_bytes: r.artifacts.resident_bytes(),
        })
    }

    #[allow(clippy::too_many_arguments)] // internal answer path; the args are one resolve result
    fn answer_subset(
        &self,
        r: &Resident<D>,
        subset: &[u32],
        outcome: CacheOutcome,
        build_work: CounterSnapshot,
        build_timings: PhaseTimings,
        spans: &mut Vec<SpanRecord>,
        deadline: Option<Instant>,
    ) -> Result<QueryResponse, ServeError> {
        let mut scratch = self.checkout();
        let solved = self.obs_now();
        // The resident copy is the authoritative cloud (it digested equal).
        let sub = match r.artifacts.merge_subset_deadline(
            &self.space,
            &r.points,
            subset,
            &self.config.emst,
            &mut scratch.boruvka,
            deadline,
        ) {
            Ok(sub) => sub,
            Err(_) => {
                self.stats.deadline_exceeded.fetch_add(1, Relaxed);
                self.obs_event(|o| o.deadline_exceeded.inc());
                return Err(ServeError::DeadlineExceeded(r.key));
            }
        };
        if let Some(solved) = solved {
            spans.push(SpanRecord {
                name: "subset.solve",
                secs: solved.elapsed().as_secs_f64(),
                fields: vec![("subset", subset.len() as u64)],
            });
        }
        let mut timings = build_timings;
        timings.absorb(&sub.stats.timings);
        let resp = QueryResponse {
            edges: sub.edges,
            total_weight: sub.total_weight,
            outcome,
            key: r.key,
            build_work,
            query_work: sub.stats.work,
            timings,
            resident_bytes: r.artifacts.resident_bytes(),
        };
        self.record_work(&(resp.build_work + resp.query_work));
        Ok(resp)
    }

    // ------------------------------------------------------------------
    // The execution API
    //
    // `execute` is the one entry point every fallible verb flows
    // through — the `try_*`/`*_by_key` wrappers, `insert`/`delete`, the
    // serve REPL, and the wire protocol all build a `ServeRequest` and
    // call it. (The legacy infallible positional wrappers run the same
    // `dispatch_guarded` table with the guards off — see the wrapper
    // block.) `Load`/`Stats` run unguarded (`Stats`
    // is a lock-free snapshot; `Load` is the explicit admission path —
    // shedding or deadline-aborting an ingest is an operator capacity
    // decision, not a per-query guard). Every other verb runs under
    // [`Self::run_guarded`]: admission control
    // ([`ServeConfig::max_in_flight`] → `Overloaded`), the per-query
    // deadline ([`ServeConfig::deadline`] → `DeadlineExceeded`, checked
    // at merge-round boundaries and before each dirty-shard re-solve),
    // and panic isolation (a panicking query returns `QueryPanic`; RAII
    // guards return scratch to the pool and release single-flight leases
    // on the unwind path, so the engine stays fully servable).
    // ------------------------------------------------------------------

    /// Executes one typed [`ServeRequest`] — the single code path behind
    /// every named method, the serve REPL, and [`net::respond`].
    ///
    /// Query and mutation verbs run under the uniform guard surface
    /// (admission control, deadline, panic isolation — see
    /// [`ServeError`]); [`ServeRequest::Load`] and [`ServeRequest::Stats`]
    /// execute unguarded. Each verb returns its matching
    /// [`ServeResponse`] arm.
    pub fn execute(&self, req: ServeRequest<'_, D>) -> Result<ServeResponse<D>, ServeError> {
        match req {
            ServeRequest::Load { points } => {
                let started = self.obs_now();
                let mut spans = Vec::new();
                let (r, outcome, build_work, _) = self.resolve(points, &mut spans);
                self.record_work(&build_work);
                self.finish_trace("ingest", r.key, outcome, started, spans);
                Ok(ServeResponse::Loaded { key: r.key })
            }
            ServeRequest::Stats => Ok(ServeResponse::Stats(StatsResponse {
                resident: self.num_resident(),
                resident_bytes: self.resident_bytes(),
                stats: self.stats(),
            })),
            req => self.run_guarded(|deadline| self.dispatch_guarded(req, deadline)),
        }
    }

    /// The query/mutation dispatch table shared by the guarded
    /// [`Self::execute`] path (which mints the deadline and holds the
    /// admission slot) and the legacy unguarded positional wrappers
    /// (which pass `deadline: None` and skip the gate — an infallible
    /// signature cannot report an honest shed).
    fn dispatch_guarded(
        &self,
        req: ServeRequest<'_, D>,
        deadline: Option<Instant>,
    ) -> Result<ServeResponse<D>, ServeError> {
        match req {
            ServeRequest::Emst { cloud } => {
                let started = self.obs_now();
                let mut spans = Vec::new();
                let (r, outcome, build_work, build_timings) =
                    self.resolve_cloud(cloud, &mut spans)?;
                let resp = self.answer_emst_deadline(
                    &r,
                    outcome,
                    build_work,
                    build_timings,
                    &mut spans,
                    deadline,
                )?;
                self.record_work(&(resp.build_work + resp.query_work));
                self.finish_trace("emst", resp.key, outcome, started, spans);
                Ok(ServeResponse::Emst(resp))
            }
            ServeRequest::Subset { cloud, subset } => {
                let started = self.obs_now();
                let mut spans = Vec::new();
                let (r, outcome, build_work, build_timings) =
                    self.resolve_cloud(cloud, &mut spans)?;
                let resp = self.answer_subset(
                    &r,
                    subset,
                    outcome,
                    build_work,
                    build_timings,
                    &mut spans,
                    deadline,
                )?;
                self.finish_trace("subset", resp.key, outcome, started, spans);
                Ok(ServeResponse::Subset(resp))
            }
            // k-NN has no merge rounds and HDBSCAN*'s fit is one
            // uninterruptible pass: for both, the deadline only gates
            // admission-to-start.
            ServeRequest::KNearest { cloud, query, k } => {
                let started = self.obs_now();
                let mut spans = Vec::new();
                let (r, outcome, build_work, _) = self.resolve_cloud(cloud, &mut spans)?;
                let mut stats = TraversalStats::default();
                let neighbors = r.artifacts.k_nearest(&query, k, &mut stats);
                let resp = KnnResponse {
                    neighbors,
                    outcome,
                    key: r.key,
                    build_work,
                    query_work: CounterSnapshot {
                        distance_computations: stats.distances,
                        node_visits: stats.nodes,
                        rope_hops: stats.rope_hops,
                        leaf_visits: stats.leaves,
                        subtrees_skipped: stats.skipped,
                        queries: 1,
                        ..CounterSnapshot::default()
                    },
                };
                self.record_work(&(resp.build_work + resp.query_work));
                self.finish_trace("knn", resp.key, outcome, started, spans);
                Ok(ServeResponse::KNearest(resp))
            }
            ServeRequest::Hdbscan { cloud, params } => {
                let started = self.obs_now();
                let mut spans = Vec::new();
                let (r, outcome, build_work, _) = self.resolve_cloud(cloud, &mut spans)?;
                let mut scratch = self.checkout();
                let result = params.fit_scratch(&self.space, &r.points, &mut scratch.boruvka);
                self.record_work(&build_work);
                self.finish_trace("hdbscan", r.key, outcome, started, spans);
                Ok(ServeResponse::Hdbscan(HdbscanResponse { result, outcome, key: r.key }))
            }
            ServeRequest::Insert { cloud, points } => {
                self.answer_mutation(cloud, Mutation::Insert(points), deadline)
            }
            ServeRequest::Delete { cloud, ids } => {
                self.answer_mutation(cloud, Mutation::Delete(ids), deadline)
            }
            ServeRequest::Load { .. } | ServeRequest::Stats => {
                unreachable!("handled unguarded in execute")
            }
        }
    }

    /// Resolves either cloud naming to a resident: points by content
    /// digest (admitting on a miss), a key via residency + spill reload.
    fn resolve_cloud(
        &self,
        cloud: CloudRef<'_, D>,
        spans: &mut Vec<SpanRecord>,
    ) -> Result<(Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings), ServeError> {
        match cloud {
            CloudRef::Points(points) => Ok(self.resolve(points, spans)),
            CloudRef::Key(key) => self.resolve_key(key, spans),
        }
    }

    /// The incremental mutation path. Resolves the parent, validates the
    /// mutation into a child point set + `parent_of` map, then resolves
    /// the child under single-flight: a hit (repeated identical mutation)
    /// serves the landed child; a vacancy derives child artifacts from
    /// the parent via [`emst_shard::ShardArtifacts::apply_update`] —
    /// re-solving only dirty shards, inheriting clean shards' BVHs/local
    /// MSTs and the parent accel's harvested floors — and admits it as a
    /// new resident. Finishes with a full (deadline-checked) EMST of the
    /// child, which warms the child accel and hands the caller edges +
    /// check digest in the same round trip.
    fn answer_mutation(
        &self,
        cloud: CloudRef<'_, D>,
        mutation: Mutation<'_, D>,
        deadline: Option<Instant>,
    ) -> Result<ServeResponse<D>, ServeError> {
        let started = self.obs_now();
        let verb = mutation.verb();
        let mut spans = Vec::new();
        let (parent, _, _, _) = self.resolve_cloud(cloud, &mut spans)?;
        let (new_points, parent_of) = match &mutation {
            Mutation::Insert(extra) => {
                let mut pts = Vec::with_capacity(parent.points.len() + extra.len());
                pts.extend_from_slice(&parent.points);
                pts.extend_from_slice(extra);
                let mut parent_of: Vec<u32> = (0..parent.points.len() as u32).collect();
                parent_of.resize(pts.len(), u32::MAX);
                (pts, parent_of)
            }
            Mutation::Delete(ids) => {
                let n = parent.points.len();
                let mut del = vec![false; n];
                for &id in *ids {
                    let slot = del.get_mut(id as usize).ok_or_else(|| {
                        ServeError::InvalidRequest(format!(
                            "delete id {id} out of range for cloud of {n} points"
                        ))
                    })?;
                    if *slot {
                        return Err(ServeError::InvalidRequest(format!(
                            "duplicate delete id {id}"
                        )));
                    }
                    *slot = true;
                }
                let mut pts = Vec::with_capacity(n - ids.len());
                let mut parent_of = Vec::with_capacity(n - ids.len());
                for (i, p) in parent.points.iter().enumerate() {
                    if !del[i] {
                        pts.push(*p);
                        parent_of.push(i as u32);
                    }
                }
                (pts, parent_of)
            }
        };
        if new_points.len() < 2 {
            return Err(ServeError::InvalidRequest(format!(
                "mutation leaves {} point(s); a servable cloud needs at least 2",
                new_points.len()
            )));
        }
        // Child resolution mirrors `resolve_digest_traced`, with the
        // build replaced by the incremental derivation.
        let digest = digest_points(&new_points);
        let mut waited = false;
        let (child, outcome, build_work, build_timings, report) = loop {
            let key = match self.lookup(digest, &new_points) {
                Lookup::Hit(child) => {
                    self.stats.hits.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.hits.inc());
                    if waited {
                        self.stats.coalesced.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.coalesced.inc());
                    }
                    break (
                        child,
                        CacheOutcome::Hit,
                        CounterSnapshot::default(),
                        PhaseTimings::new(),
                        UpdateReport::default(),
                    );
                }
                Lookup::Vacant(key) => key,
            };
            match self.begin_flight(key) {
                Err(flight) => {
                    let parked = self.obs_now();
                    flight.wait();
                    if let (Some(obs), Some(parked)) = (&self.obs, parked) {
                        let d = parked.elapsed();
                        obs.lease_wait.record(d);
                        spans.push(SpanRecord::new("lease.wait", d.as_secs_f64()));
                    }
                    waited = true;
                }
                Ok(_lease) => {
                    match self.lookup(digest, &new_points) {
                        Lookup::Hit(child) => {
                            self.stats.hits.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.hits.inc());
                            if waited {
                                self.stats.coalesced.fetch_add(1, Relaxed);
                                self.obs_event(|o| o.coalesced.inc());
                            }
                            break (
                                child,
                                CacheOutcome::Hit,
                                CounterSnapshot::default(),
                                PhaseTimings::new(),
                                UpdateReport::default(),
                            );
                        }
                        Lookup::Vacant(fresh) if fresh != key => continue,
                        Lookup::Vacant(_) => {}
                    }
                    let key = self.durable_salt(key, &new_points);
                    self.stats.misses.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.misses.inc());
                    if key.salt != 0 {
                        self.stats.digest_collisions.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.digest_collisions.inc());
                        emst_obs::log::warn(
                            "emst-serve",
                            "verified digest collision, admitting under salted key",
                            &[("key", &key.to_string()), ("salt", &key.salt.to_string())],
                        );
                    }
                    let derived = self.obs_now();
                    let (artifacts, report) = {
                        let mut scratch = self.checkout();
                        let scratch = &mut *scratch;
                        // Copy the parent's accel out so its harvested
                        // floors seed the child's bounds without holding
                        // the parent's lock across the dirty solves.
                        {
                            let wait = self.obs_now();
                            let accel = parent.accel.read();
                            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                                obs.lock_accel_read.record(wait.elapsed());
                            }
                            scratch.accel.copy_from(&accel);
                        }
                        match parent.artifacts.apply_update(
                            &self.space,
                            &parent.points,
                            &new_points,
                            &parent_of,
                            &self.shard_config(),
                            &mut scratch.boruvka,
                            Some(&scratch.accel),
                            deadline,
                        ) {
                            Ok(out) => out,
                            Err(_) => {
                                self.stats.deadline_exceeded.fetch_add(1, Relaxed);
                                self.obs_event(|o| o.deadline_exceeded.inc());
                                return Err(ServeError::DeadlineExceeded(parent.key));
                            }
                        }
                    };
                    let build_work = artifacts.build_work();
                    let build_timings = artifacts.build_timings().clone();
                    if let Some(derived) = derived {
                        spans.push(SpanRecord {
                            name: "update",
                            secs: derived.elapsed().as_secs_f64(),
                            fields: vec![
                                ("points", new_points.len() as u64),
                                ("dirty", report.dirty_shards.len() as u64),
                                ("reused", report.reused_shards as u64),
                                ("rebuild", u64::from(report.full_rebuild)),
                            ],
                        });
                    }
                    let child = self.admit(key, new_points.clone(), artifacts, &mut spans);
                    break (child, CacheOutcome::Miss, build_work, build_timings, report);
                }
            }
        };
        let update = self.answer_emst_deadline(
            &child,
            outcome,
            build_work,
            build_timings,
            &mut spans,
            deadline,
        )?;
        self.record_work(&(update.build_work + update.query_work));
        match &mutation {
            Mutation::Insert(_) => {
                self.stats.inserts.fetch_add(1, Relaxed);
                self.obs_event(|o| o.inserts.inc());
            }
            Mutation::Delete(_) => {
                self.stats.deletes.fetch_add(1, Relaxed);
                self.obs_event(|o| o.deletes.inc());
            }
        }
        self.finish_trace(verb, child.key, outcome, started, spans);
        Ok(ServeResponse::Mutated(MutateResponse {
            key: child.key,
            n: new_points.len(),
            points: new_points,
            dirty_shards: report.dirty_shards,
            reused_shards: report.reused_shards,
            full_rebuild: report.full_rebuild,
            update,
        }))
    }

    /// Admission + deadline + panic isolation around a query body.
    fn run_guarded<T>(
        &self,
        f: impl FnOnce(Option<Instant>) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let _gate = self.admission_gate()?;
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(deadline))) {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                self.stats.query_panics.fetch_add(1, Relaxed);
                self.obs_event(|o| o.query_panics.inc());
                emst_obs::log::warn(
                    "emst-serve",
                    "query panicked; isolated to an error",
                    &[("panic", &msg)],
                );
                Err(ServeError::QueryPanic(msg))
            }
        }
    }

    /// Claims an in-flight slot, shedding with [`ServeError::Overloaded`]
    /// past [`ServeConfig::max_in_flight`]. The token is claimed *before*
    /// the bound check (fetch_add, then compare), so two racing arrivals
    /// at the last slot can both be shed but can never both be admitted.
    fn admission_gate(&self) -> Result<Option<InFlightGuard<'_>>, ServeError> {
        let max = self.config.max_in_flight;
        if max == 0 {
            return Ok(None);
        }
        let prev = self.in_flight.fetch_add(1, Relaxed);
        let guard = InFlightGuard(&self.in_flight);
        if prev >= max as u64 {
            drop(guard);
            self.stats.shed.fetch_add(1, Relaxed);
            self.obs_event(|o| o.shed.inc());
            return Err(ServeError::Overloaded);
        }
        Ok(Some(guard))
    }

    // BEGIN WRAPPERS OVER EXECUTE ---------------------------------------
    //
    // Every named method below is a one-line wrapper: build the
    // `ServeRequest`, run it through the `execute` dispatch table, unwrap
    // the matching `ServeResponse` arm. No query logic lives here — CI
    // greps this block's markers and fails if a new `pub fn try_*`
    // appears outside it. The fallible surface (`try_*`, `*_by_key`,
    // `insert`/`delete`) calls [`Self::execute`] and inherits its full
    // guard surface. The infallible positional signatures run the same
    // dispatch *unguarded* — no admission gate, no deadline — because an
    // infallible signature cannot report an honest shed; they surface
    // the remaining errors (invalid requests) by panicking with the
    // `Display`, preserving the historical panic contracts.

    /// Ingests `points` (builds and admits artifacts) without running a
    /// query, returning the key future queries can use. Re-ingesting a
    /// resident cloud is a no-op hit. Wrapper over
    /// [`ServeRequest::Load`] via [`Self::execute`].
    pub fn ingest(&self, points: &[Point<D>]) -> CloudKey {
        match self.execute(ServeRequest::Load { points }) {
            Ok(ServeResponse::Loaded { key }) => key,
            other => unreachable!("Load is infallible and returns Loaded: {other:?}"),
        }
    }

    /// Full EMST of `points`. Warm path (the cloud is resident): merge
    /// only — no plan, no local solves, no tree builds; the edges are
    /// bit-identical to the cold solve because both are the same
    /// deterministic merge over the same artifacts. Unguarded wrapper
    /// over [`ServeRequest::Emst`]: no admission gate, no deadline — use
    /// [`Self::try_emst`] / [`Self::emst_by_key`] for the guarded
    /// surface.
    pub fn emst(&self, points: &[Point<D>]) -> QueryResponse {
        match self.dispatch_guarded(ServeRequest::Emst { cloud: CloudRef::Points(points) }, None) {
            Ok(ServeResponse::Emst(r)) => r,
            Ok(other) => unreachable!("Emst returns Emst: {other:?}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::emst`] under the fallible signature. Wrapper over
    /// [`ServeRequest::Emst`] via [`Self::execute`].
    pub fn try_emst(&self, points: &[Point<D>]) -> Result<QueryResponse, ServeError> {
        match self.execute(ServeRequest::Emst { cloud: CloudRef::Points(points) })? {
            ServeResponse::Emst(r) => Ok(r),
            other => unreachable!("Emst returns Emst: {other:?}"),
        }
    }

    /// [`Self::emst`] by key: serves a previously ingested cloud without
    /// resending its points, transparently reloading from the spill file
    /// if the cloud was evicted. Wrapper over [`ServeRequest::Emst`] via
    /// [`Self::execute`].
    pub fn emst_by_key(&self, key: CloudKey) -> Result<QueryResponse, ServeError> {
        match self.execute(ServeRequest::Emst { cloud: CloudRef::Key(key) })? {
            ServeResponse::Emst(r) => Ok(r),
            other => unreachable!("Emst returns Emst: {other:?}"),
        }
    }

    /// Exact EMST of a subset of `points` (distinct original indices),
    /// re-merging only the touched shards; fully-covered shards reuse
    /// their resident BVH + local MST (see
    /// [`emst_shard::ShardArtifacts::merge_subset`]). Unguarded wrapper
    /// over [`ServeRequest::Subset`] (no gate, no deadline) — use
    /// [`Self::try_emst_subset`] / [`Self::emst_subset_by_key`] for the
    /// guarded surface.
    ///
    /// # Panics
    /// On out-of-range or duplicate subset indices.
    pub fn emst_subset(&self, points: &[Point<D>], subset: &[u32]) -> QueryResponse {
        let req = ServeRequest::Subset { cloud: CloudRef::Points(points), subset };
        match self.dispatch_guarded(req, None) {
            Ok(ServeResponse::Subset(r)) => r,
            Ok(other) => unreachable!("Subset returns Subset: {other:?}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::emst_subset`] under the fallible signature. Wrapper over
    /// [`ServeRequest::Subset`] via [`Self::execute`].
    pub fn try_emst_subset(
        &self,
        points: &[Point<D>],
        subset: &[u32],
    ) -> Result<QueryResponse, ServeError> {
        match self.execute(ServeRequest::Subset { cloud: CloudRef::Points(points), subset })? {
            ServeResponse::Subset(r) => Ok(r),
            other => unreachable!("Subset returns Subset: {other:?}"),
        }
    }

    /// [`Self::emst_subset`] by key: subset EMST of a previously ingested
    /// cloud, reloading from spill on demand. Wrapper over
    /// [`ServeRequest::Subset`] via [`Self::execute`].
    pub fn emst_subset_by_key(
        &self,
        key: CloudKey,
        subset: &[u32],
    ) -> Result<QueryResponse, ServeError> {
        match self.execute(ServeRequest::Subset { cloud: CloudRef::Key(key), subset })? {
            ServeResponse::Subset(r) => Ok(r),
            other => unreachable!("Subset returns Subset: {other:?}"),
        }
    }

    /// The `k` nearest ingested points to `query`, answered from the
    /// resident per-shard BVHs. Unguarded wrapper over
    /// [`ServeRequest::KNearest`] (no gate, no deadline) — use
    /// [`Self::try_k_nearest`] / [`Self::k_nearest_by_key`] for the
    /// guarded surface.
    pub fn k_nearest(&self, points: &[Point<D>], query: &Point<D>, k: usize) -> KnnResponse {
        let req = ServeRequest::KNearest { cloud: CloudRef::Points(points), query: *query, k };
        match self.dispatch_guarded(req, None) {
            Ok(ServeResponse::KNearest(r)) => r,
            Ok(other) => unreachable!("KNearest returns KNearest: {other:?}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::k_nearest`] under the fallible signature. Wrapper over
    /// [`ServeRequest::KNearest`] via [`Self::execute`].
    pub fn try_k_nearest(
        &self,
        points: &[Point<D>],
        query: &Point<D>,
        k: usize,
    ) -> Result<KnnResponse, ServeError> {
        let req = ServeRequest::KNearest { cloud: CloudRef::Points(points), query: *query, k };
        match self.execute(req)? {
            ServeResponse::KNearest(r) => Ok(r),
            other => unreachable!("KNearest returns KNearest: {other:?}"),
        }
    }

    /// [`Self::k_nearest`] by key, reloading from spill on demand.
    /// Wrapper over [`ServeRequest::KNearest`] via [`Self::execute`].
    pub fn k_nearest_by_key(
        &self,
        key: CloudKey,
        query: &Point<D>,
        k: usize,
    ) -> Result<KnnResponse, ServeError> {
        let req = ServeRequest::KNearest { cloud: CloudRef::Key(key), query: *query, k };
        match self.execute(req)? {
            ServeResponse::KNearest(r) => Ok(r),
            other => unreachable!("KNearest returns KNearest: {other:?}"),
        }
    }

    /// HDBSCAN* clustering of `points`, drawing the EMST pass's working
    /// arrays from a warm scratch pool ([`Hdbscan::fit_scratch`]).
    /// Unguarded wrapper over [`ServeRequest::Hdbscan`] (no gate, no
    /// deadline) — use [`Self::try_hdbscan`] / [`Self::hdbscan_by_key`]
    /// for the guarded surface.
    pub fn hdbscan(&self, points: &[Point<D>], params: Hdbscan) -> HdbscanResponse {
        let req = ServeRequest::Hdbscan { cloud: CloudRef::Points(points), params };
        match self.dispatch_guarded(req, None) {
            Ok(ServeResponse::Hdbscan(r)) => r,
            Ok(other) => unreachable!("Hdbscan returns Hdbscan: {other:?}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::hdbscan`] under the fallible signature. Wrapper over
    /// [`ServeRequest::Hdbscan`] via [`Self::execute`].
    pub fn try_hdbscan(
        &self,
        points: &[Point<D>],
        params: Hdbscan,
    ) -> Result<HdbscanResponse, ServeError> {
        match self.execute(ServeRequest::Hdbscan { cloud: CloudRef::Points(points), params })? {
            ServeResponse::Hdbscan(r) => Ok(r),
            other => unreachable!("Hdbscan returns Hdbscan: {other:?}"),
        }
    }

    /// [`Self::hdbscan`] by key, reloading from spill on demand. Wrapper
    /// over [`ServeRequest::Hdbscan`] via [`Self::execute`].
    pub fn hdbscan_by_key(
        &self,
        key: CloudKey,
        params: Hdbscan,
    ) -> Result<HdbscanResponse, ServeError> {
        match self.execute(ServeRequest::Hdbscan { cloud: CloudRef::Key(key), params })? {
            ServeResponse::Hdbscan(r) => Ok(r),
            other => unreachable!("Hdbscan returns Hdbscan: {other:?}"),
        }
    }

    /// Incrementally inserts `points` into the cloud at `key`, deriving
    /// and admitting the mutated cloud as a new resident (the parent
    /// stays servable). Wrapper over [`ServeRequest::Insert`] via
    /// [`Self::execute`].
    pub fn insert(
        &self,
        key: CloudKey,
        points: &[Point<D>],
    ) -> Result<MutateResponse<D>, ServeError> {
        match self.execute(ServeRequest::Insert { cloud: CloudRef::Key(key), points })? {
            ServeResponse::Mutated(r) => Ok(r),
            other => unreachable!("Insert returns Mutated: {other:?}"),
        }
    }

    /// Incrementally deletes the parent-cloud indices `ids` from the
    /// cloud at `key`, deriving and admitting the mutated cloud as a new
    /// resident (the parent stays servable). Wrapper over
    /// [`ServeRequest::Delete`] via [`Self::execute`].
    pub fn delete(&self, key: CloudKey, ids: &[u32]) -> Result<MutateResponse<D>, ServeError> {
        match self.execute(ServeRequest::Delete { cloud: CloudRef::Key(key), ids })? {
            ServeResponse::Mutated(r) => Ok(r),
            other => unreachable!("Delete returns Mutated: {other:?}"),
        }
    }

    // END WRAPPERS OVER EXECUTE -----------------------------------------
}

/// Releases an in-flight admission slot on drop — including on the
/// unwind path of a panicking query.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl<S: ExecSpace, const D: usize> Drop for ServeEngine<S, D> {
    fn drop(&mut self) {
        if self.owns_spill_dir {
            std::fs::remove_dir_all(&self.spill_dir).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    /// The engine is shareable across threads by reference (the tentpole
    /// property behind every `&self` query).
    #[test]
    fn engine_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ServeEngine<Serial, 2>>();
        assert_sync::<ServeEngine<Threads, 3>>();
    }

    #[test]
    fn warm_queries_skip_the_local_phase_and_match_exactly() {
        let pts = random_points_2d(700, 1);
        let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
        let cold = engine.emst(&pts);
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        assert!(cold.build_work.iterations > 0);
        assert!(cold.timings.get("local") > 0.0);
        let warm = engine.emst(&pts);
        assert_eq!(warm.outcome, CacheOutcome::Hit);
        assert!(warm.build_work.is_zero());
        assert_eq!(warm.timings.get("plan"), 0.0);
        assert_eq!(warm.timings.get("local"), 0.0);
        assert!(warm.timings.get("merge") > 0.0);
        // Merge-only traversal stats: no solve iterations ran.
        assert_eq!(warm.query_work.iterations, 0);
        assert_eq!(warm.edges, cold.edges);
        // The shared accelerator only shrinks warm traversal work: a
        // second warm query re-derives nothing round 1 already proved.
        let warmer = engine.emst(&pts);
        assert_eq!(warmer.edges, cold.edges);
        assert!(warmer.query_work.queries <= warm.query_work.queries);
        assert_eq!(engine.stats(), ServeStats { hits: 2, misses: 1, ..Default::default() });
    }

    #[test]
    fn lru_eviction_spills_and_reloads_bit_identically() {
        let a = random_points_2d(300, 2);
        let b = random_points_2d(300, 3);
        let c = random_points_2d(300, 4);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let ra = engine.emst(&a);
        let key_a = ra.key;
        engine.emst(&b);
        engine.emst(&c); // budget 2: evicts `a` (LRU)
        assert_eq!(engine.num_resident(), 2);
        assert_eq!(engine.stats().evictions, 1);
        let back = engine.emst_by_key(key_a).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, ra.edges);
        assert_eq!(engine.stats().reloads, 1);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        let missing = CloudKey::forged(0xdead, 2);
        assert!(matches!(engine.emst_by_key(missing), Err(ServeError::UnknownKey(_))));
    }

    #[test]
    fn foreign_shard_count_keys_are_rejected() {
        // A key minted under a different K (e.g. by another engine sharing
        // a spill directory) must not be rebuilt with this engine's K and
        // registered under the foreign key.
        let pts = random_points_2d(200, 9);
        let dir = std::env::temp_dir().join(format!("emst-serve-k-test-{}", std::process::id()));
        let mut cfg8 = ServeConfig::new(8, 1);
        cfg8.spill_dir = Some(dir.clone());
        let e8 = ServeEngine::<_, 2>::new(Serial, cfg8);
        let key8 = e8.ingest(&pts);
        e8.emst(&random_points_2d(200, 10)); // evicts the first cloud to disk

        let mut cfg4 = ServeConfig::new(4, 1);
        cfg4.spill_dir = Some(dir.clone());
        let e4 = ServeEngine::<_, 2>::new(Serial, cfg4);
        assert!(matches!(e4.emst_by_key(key8), Err(ServeError::UnknownKey(k)) if k == key8));
        assert_eq!(e4.num_resident(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_then_query_by_key_is_warm() {
        let pts = random_points_2d(400, 5);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let key = engine.ingest(&pts);
        let r = engine.emst_by_key(key).unwrap();
        assert_eq!(r.outcome, CacheOutcome::Hit);
        assert!(r.build_work.is_zero());
        assert_eq!(r.edges.len(), 399);
    }

    #[test]
    fn resident_accounting_reports_bytes_and_keys() {
        let pts = random_points_2d(500, 6);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let key = engine.ingest(&pts);
        assert_eq!(engine.num_resident(), 1);
        assert_eq!(engine.resident_keys(), vec![key]);
        assert!(engine.resident_bytes() > 0);
        let r = engine.emst(&pts);
        assert!(r.resident_bytes > 0);
        assert!(r.resident_bytes <= engine.resident_bytes());
    }

    /// Satellite bugfix: eviction spill failures must be counted and must
    /// not corrupt the cache (the evicted cloud just loses durability).
    /// The spill dir nests under a regular *file*, so `create_dir_all`
    /// fails even when running as root (mode bits would not).
    #[test]
    fn spill_write_failures_are_counted_not_silent() {
        let blocker =
            std::env::temp_dir().join(format!("emst-serve-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let mut cfg = ServeConfig::new(3, 1);
        cfg.spill_dir = Some(blocker.join("spills"));
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);

        let a = random_points_2d(200, 12);
        let b = random_points_2d(200, 13);
        let key_a = engine.ingest(&a);
        engine.emst(&b); // budget 1: evicts `a`, spill write must fail
        let stats = engine.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.spill_failures, 1);
        // The cloud lost durability — by-key now honestly errors (here the
        // unreadable dir surfaces as a spill I/O error; with a writable dir
        // that lost the file it would be `UnknownKey`) instead of serving
        // wrong or stale data…
        assert!(matches!(
            engine.emst_by_key(key_a),
            Err(ServeError::Spill(_) | ServeError::UnknownKey(_))
        ));
        // …but re-presenting the points still re-ingests and answers.
        assert_eq!(engine.emst(&a).outcome, CacheOutcome::Miss);
        std::fs::remove_file(&blocker).ok();
    }

    /// Satellite bugfix: a 64-bit digest collision must not alias two
    /// clouds onto one answer. Forced through the digest seam: both clouds
    /// resolve under the same digest, the second gets a salted key, and
    /// each keeps serving its own bits.
    #[test]
    fn verified_digest_collisions_get_salted_keys() {
        let a = random_points_2d(150, 20);
        let b = random_points_2d(150, 21);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 4));

        let (ra, oa, _, _) = engine.resolve_digest(0x42, &a);
        assert_eq!(oa, CacheOutcome::Miss);
        assert_eq!(ra.key, CloudKey { digest: 0x42, shards: 3, salt: 0 });

        // Same digest, different bytes: verified mismatch, salted admit.
        let (rb, ob, _, _) = engine.resolve_digest(0x42, &b);
        assert_eq!(ob, CacheOutcome::Miss);
        assert_eq!(rb.key, CloudKey { digest: 0x42, shards: 3, salt: 1 });
        assert_eq!(engine.stats().digest_collisions, 1);
        assert_eq!(format!("{}", rb.key), "0000000000000042/K3/s1");

        // Both clouds stay resident and each re-resolves to its own entry.
        let (ra2, oa2, _, _) = engine.resolve_digest(0x42, &a);
        let (rb2, ob2, _, _) = engine.resolve_digest(0x42, &b);
        assert_eq!((oa2, ob2), (CacheOutcome::Hit, CacheOutcome::Hit));
        assert_eq!(ra2.key.salt, 0);
        assert_eq!(rb2.key.salt, 1);
        assert_eq!(ra2.points, a);
        assert_eq!(rb2.points, b);
        // The hits did not mint new collisions.
        assert_eq!(engine.stats().digest_collisions, 1);

        // And the answers served under the colliding digest differ — the
        // aliasing bug would have returned `a`'s tree for `b`.
        let ea = self::answer(&engine, &ra2);
        let eb = self::answer(&engine, &rb2);
        assert_ne!(ea, eb);
    }

    fn answer(engine: &ServeEngine<Serial, 2>, r: &Resident<2>) -> Vec<Edge> {
        engine
            .answer_emst_deadline(
                r,
                CacheOutcome::Hit,
                CounterSnapshot::default(),
                PhaseTimings::new(),
                &mut vec![],
                None,
            )
            .expect("no deadline was set")
            .edges
    }

    /// Satellite: the recency clock hands out unique ticks under
    /// contention — ties are impossible, so the LRU victim is unambiguous.
    #[test]
    fn clock_ticks_are_unique_across_threads() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        let per_thread = 2000;
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = &engine;
                    s.spawn(move || (0..per_thread).map(|_| engine.tick()).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "duplicate recency tick observed");
    }

    /// Tentpole: concurrent misses for one key coalesce on a single build.
    #[test]
    fn concurrent_same_cloud_queries_single_flight() {
        let pts = random_points_2d(800, 30);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let edges: Vec<Vec<Edge>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let (engine, pts) = (&engine, &pts);
                    s.spawn(move || engine.emst(pts).edges)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in &edges[1..] {
            assert_eq!(e, &edges[0]);
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 1, "exactly one thread may build");
        assert_eq!(stats.hits, 5, "everyone else must hit the landed build");
        assert_eq!(engine.num_resident(), 1);
    }

    /// Regression stress for the lookup→begin_flight TOCTOU: a thread that
    /// read "not resident", stalled, and won a lease after the prior
    /// leader landed must re-check and serve the landed resident. Without
    /// the double-check, the late winner re-admits the key — at budget 1
    /// the duplicate becomes the LRU victim of its own admission and trips
    /// the `assert_ne!` eviction guard (panicking the thread), and under
    /// salted keys a *distinct* cloud can land on a taken salt. Colliding
    /// digests + a tiny budget churn admissions to maximize the window.
    #[test]
    fn racing_admissions_never_duplicate_residents() {
        let a = random_points_2d(120, 50);
        let b = random_points_2d(120, 51);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let (engine, a, b) = (&engine, &a, &b);
                s.spawn(move || {
                    for r in 0..20 {
                        let pts = if (t + r) % 2 == 0 { a } else { b };
                        let (resident, _, _, _) = engine.resolve_digest(0x99, pts);
                        // Never the colliding cloud's data.
                        assert_eq!(&resident.points, pts, "thread {t} round {r}");
                    }
                });
            }
        });
        assert_eq!(engine.num_resident(), 1, "budget must hold after the churn");
        let stats = engine.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 20);
    }

    /// Satellite bugfix hardening: collision salts are durable across
    /// eviction. A distinct cloud under an already-spilled digest must not
    /// claim the spilled cloud's salt — its own eviction would overwrite
    /// that spill file, and a later by-key reload would pass the digest
    /// check (a true collision shares the digest) and silently serve the
    /// wrong cloud's points.
    #[test]
    fn evicted_collision_spills_keep_distinct_salts() {
        let a = random_points_2d(150, 40);
        let b = random_points_2d(150, 41);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        let k0 = CloudKey { digest: 0x7, shards: 3, salt: 0 };
        let k1 = CloudKey { digest: 0x7, shards: 3, salt: 1 };

        let (ra, _, _, _) = engine.resolve_digest(0x7, &a);
        assert_eq!(ra.key, k0);
        drop(ra);
        engine.resolve_digest(0x8, &random_points_2d(150, 42)); // budget 1: spills `a` at salt 0

        // `a` is no longer resident, so the resident scan alone would hand
        // `b` salt 0 — the spill probe must skip past `a`'s file.
        let (rb, ob, _, _) = engine.resolve_digest(0x7, &b);
        assert_eq!(ob, CacheOutcome::Miss);
        assert_eq!(rb.key, k1, "salt must skip a foreign spill");
        assert_eq!(engine.stats().digest_collisions, 1);
        drop(rb);
        engine.resolve_digest(0x9, &random_points_2d(150, 43)); // spills `b` at salt 1

        // Both spill files coexist, each holding its own cloud's points.
        assert_eq!(spill::read_spill::<2>(&engine.spill_dir, k0, None).unwrap().unwrap().points, a);
        assert_eq!(spill::read_spill::<2>(&engine.spill_dir, k1, None).unwrap().unwrap().points, b);

        // Re-presenting an evicted cloud reuses its own spill slot rather
        // than leaking a fresh salt per eviction cycle.
        let (ra2, oa2, _, _) = engine.resolve_digest(0x7, &a);
        assert_eq!(oa2, CacheOutcome::Miss);
        assert_eq!(ra2.key, k0);
        let (rb2, _, _, _) = engine.resolve_digest(0x7, &b);
        assert_eq!(rb2.key, k1);
    }

    /// The scratch pool is bounded and panic-safe: guards check their
    /// scratch back in on drop — including on the unwind path, so a
    /// panicking merge cannot permanently leak scratch — and check-in
    /// past the cap discards instead of growing without bound.
    #[test]
    fn scratch_pool_is_bounded_and_panic_safe() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        {
            let guards: Vec<_> = (0..MAX_POOLED_SCRATCH + 5).map(|_| engine.checkout()).collect();
            drop(guards);
        }
        assert_eq!(engine.scratch_pool.lock().len(), MAX_POOLED_SCRATCH);

        engine.scratch_pool.lock().clear();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.checkout();
            panic!("query panicked mid-merge");
        }));
        std::panic::set_hook(prev);
        assert!(caught.is_err());
        assert_eq!(engine.scratch_pool.lock().len(), 1, "unwound scratch must return");
    }

    /// Tentpole: queries populate the per-op histograms, cache-event
    /// counters, work counters and the trace ring, and the exposition
    /// carries quantile lines for the op family.
    #[test]
    fn queries_populate_metrics_and_traces() {
        let pts = random_points_2d(600, 60);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        assert!(engine.observability_enabled());
        engine.emst(&pts); // miss
        engine.emst(&pts); // hit
        engine.k_nearest(&pts, &pts[0], 3);

        let text = engine.metrics_prometheus();
        assert!(text.contains("emst_serve_op_seconds_count{op=\"emst\"} 2"), "{text}");
        assert!(text.contains("emst_serve_op_seconds_p50{op=\"emst\"}"));
        assert!(text.contains("emst_serve_op_seconds_p99{op=\"emst\"}"));
        assert!(text.contains("emst_serve_op_seconds_count{op=\"knn\"} 1"));
        assert!(text.contains("emst_serve_cache_events_total{event=\"hit\"} 2"));
        assert!(text.contains("emst_serve_cache_events_total{event=\"miss\"} 1"));
        assert!(text.contains("emst_serve_scratch_checkouts_total 2"));
        assert!(text.contains("emst_serve_resident_clouds 1"));
        // Work counters bridge the exec counter snapshot field-for-field.
        assert!(text.contains("emst_serve_work_total{counter=\"distance_computations\"}"));
        assert!(text.contains("emst_serve_work_total{counter=\"heap_ops\"}"));

        let json = engine.metrics_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("p99_s"));

        // Newest-first traces: knn, then the warm emst with its merge
        // rounds and absorb, then the cold emst with its build span.
        let traces = engine.recent_traces(10);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].op, "knn");
        assert_eq!(traces[1].op, "emst");
        assert_eq!(traces[1].outcome, "hit");
        assert!(traces[1].spans.iter().any(|s| s.name == "digest"));
        assert!(traces[1].spans.iter().any(|s| s.name == "absorb"));
        let round = traces[1]
            .spans
            .iter()
            .find(|s| s.name == "merge.round")
            .expect("warm emst records merge rounds");
        assert_eq!(round.field("round"), Some(1));
        assert!(round.field("queries").is_some());
        assert!(round.field("distances").is_some());
        assert_eq!(traces[2].outcome, "miss");
        assert!(traces[2].spans.iter().any(|s| s.name == "build"));
    }

    /// The observability switch really removes the probes: answers stay
    /// bit-identical, exporters return empty documents.
    #[test]
    fn observability_off_serves_identically_with_empty_exporters() {
        let pts = random_points_2d(500, 61);
        let on = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let mut cfg = ServeConfig::new(4, 2);
        cfg.observability = false;
        let off = ServeEngine::<_, 2>::new(Serial, cfg);
        assert!(!off.observability_enabled());

        let (a, b) = (on.emst(&pts), off.emst(&pts));
        assert_eq!(a.edges, b.edges);
        let (a, b) = (on.emst(&pts), off.emst(&pts));
        assert_eq!(a.edges, b.edges);

        assert_eq!(off.metrics_prometheus(), "");
        assert_eq!(off.metrics_json(), "{}\n");
        assert!(off.recent_traces(5).is_empty());
        // ServeStats are part of the serving contract, not observability:
        // both engines count identically.
        assert_eq!(on.stats(), off.stats());
    }

    /// `ServeStats::named_fields` is the reflection seam the CLI `stats`
    /// command prints from; it must cover every field exactly once.
    #[test]
    fn serve_stats_named_fields_cover_every_field() {
        let stats = ServeStats {
            hits: 1,
            misses: 2,
            reloads: 3,
            evictions: 4,
            spill_failures: 5,
            digest_collisions: 6,
            coalesced: 7,
            spill_retries: 8,
            spill_relocations: 9,
            checksum_failures: 10,
            artifact_restores: 11,
            artifact_rebuilds: 12,
            deadline_exceeded: 13,
            shed: 14,
            query_panics: 15,
            query_coalesced: 16,
            inserts: 17,
            deletes: 18,
        };
        let fields = stats.named_fields();
        assert_eq!(fields.len(), 18);
        let sum: u64 = fields.iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, (1..=18).sum(), "every field value appears exactly once");
        assert!(fields.iter().any(|&(n, v)| n == "digest_collisions" && v == 6));
        assert!(fields.iter().any(|&(n, v)| n == "coalesced" && v == 7));
        assert!(fields.iter().any(|&(n, v)| n == "checksum_failures" && v == 10));
        assert!(fields.iter().any(|&(n, v)| n == "query_panics" && v == 15));
        assert!(fields.iter().any(|&(n, v)| n == "query_coalesced" && v == 16));
    }

    /// Tentpole: an evicted cloud reloads by *restoring* its serialized
    /// artifacts — no rebuild runs, and the answers are bit-identical.
    #[test]
    fn reload_restores_artifacts_without_rebuilding() {
        let a = random_points_2d(400, 70);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        let cold = engine.emst(&a);
        engine.emst(&random_points_2d(400, 71)); // budget 1: evicts `a`
        let back = engine.emst_by_key(cold.key).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, cold.edges);
        assert_eq!(back.total_weight, cold.total_weight);
        // Restored, not rebuilt: zero build work, zero local-phase time.
        assert!(back.build_work.is_zero());
        assert_eq!(back.timings.get("local"), 0.0);
        let stats = engine.stats();
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.artifact_restores, 1);
        assert_eq!(stats.artifact_rebuilds, 0);
        assert_eq!(stats.checksum_failures, 0);
        let text = engine.metrics_prometheus();
        assert!(text.contains("emst_serve_reload_seconds_count{path=\"restore\"} 1"), "{text}");
        assert!(text.contains("emst_serve_cache_events_total{event=\"artifact_restore\"} 1"));
    }

    /// With artifact persistence off, reloads fall back to the
    /// deterministic rebuild — same bits, counted as a rebuild.
    #[test]
    fn reload_without_artifacts_rebuilds_bit_identically() {
        let a = random_points_2d(400, 72);
        let mut cfg = ServeConfig::new(3, 1);
        cfg.spill_artifacts = false;
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);
        let cold = engine.emst(&a);
        engine.emst(&random_points_2d(400, 73));
        let back = engine.emst_by_key(cold.key).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, cold.edges);
        assert!(back.build_work.iterations > 0, "the rebuild really ran");
        let stats = engine.stats();
        assert_eq!((stats.artifact_restores, stats.artifact_rebuilds), (0, 1));
        assert_eq!(stats.artifact_restores + stats.artifact_rebuilds, stats.reloads);
    }

    /// Satellite: a corrupted spill file is a typed error on every query
    /// path — emst, subset, knn, hdbscan — never wrong edges. Truncation,
    /// a flipped byte, and a wrong-length file all land in
    /// `DigestMismatch` (detected corruption) with `checksum_failures`
    /// counted; re-presenting the points recovers.
    #[test]
    fn corrupted_spills_error_on_every_query_path() {
        let a = random_points_2d(300, 74);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        let cold = engine.emst(&a);
        let key = cold.key;
        engine.emst(&random_points_2d(300, 75)); // evicts `a`
        let path = spill::spill_path(&engine.spill_dir, key);
        let pristine = std::fs::read(&path).unwrap();

        // 300 2-D points: the PNTS payload spans bytes 72..2472, so a cut
        // at 500 and a flip at 100 both damage the *points*, which must be
        // a hard error (a flip in the trailing ARTS blob only degrades).
        let corruptions: [(&str, Vec<u8>); 3] = [
            ("truncated", pristine[..500].to_vec()),
            ("flipped byte", {
                let mut v = pristine.clone();
                v[100] ^= 0x20;
                v
            }),
            ("wrong length", {
                let mut v = pristine.clone();
                v.extend_from_slice(b"extra");
                v
            }),
        ];
        for (what, bytes) in &corruptions {
            std::fs::write(&path, bytes).unwrap();
            assert!(
                matches!(
                    engine.emst_by_key(key),
                    Err(ServeError::DigestMismatch(_) | ServeError::Spill(_))
                ),
                "emst: {what}"
            );
            assert!(
                matches!(
                    engine.emst_subset_by_key(key, &[0, 1, 2]),
                    Err(ServeError::DigestMismatch(_) | ServeError::Spill(_))
                ),
                "subset: {what}"
            );
            assert!(
                matches!(
                    engine.k_nearest_by_key(key, &Point::new([0.0, 0.0]), 3),
                    Err(ServeError::DigestMismatch(_) | ServeError::Spill(_))
                ),
                "knn: {what}"
            );
            assert!(
                matches!(
                    engine.hdbscan_by_key(key, Hdbscan::default()),
                    Err(ServeError::DigestMismatch(_) | ServeError::Spill(_))
                ),
                "hdbscan: {what}"
            );
        }
        let stats = engine.stats();
        assert!(stats.checksum_failures >= 12, "every rejection counted: {stats:?}");
        assert_eq!(stats.reloads, 0, "nothing corrupt was ever admitted");

        // Recovery: the pristine bytes serve again, bit-identically.
        std::fs::write(&path, &pristine).unwrap();
        let back = engine.emst_by_key(key).unwrap();
        assert_eq!(back.edges, cold.edges);
        // And re-presenting the points always works, even with the spill
        // corrupted again.
        std::fs::write(&path, &corruptions[0].1).unwrap();
        assert_eq!(engine.emst(&a).edges, cold.edges);
    }

    /// Corruption confined to the artifact section only *degrades*: the
    /// reload still answers (bit-identically) via rebuild, with the
    /// failure counted.
    #[test]
    fn corrupt_artifact_section_degrades_to_rebuild() {
        let a = random_points_2d(300, 76);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        let cold = engine.emst(&a);
        engine.emst(&random_points_2d(300, 77)); // evicts `a`
        let path = spill::spill_path(&engine.spill_dir, cold.key);
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 20] ^= 0x40; // inside the trailing ARTS payload/checksum
        std::fs::write(&path, &bytes).unwrap();
        let back = engine.emst_by_key(cold.key).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, cold.edges);
        let stats = engine.stats();
        assert_eq!(stats.artifact_rebuilds, 1);
        assert_eq!(stats.artifact_restores, 0);
        assert!(stats.checksum_failures >= 1);
    }

    /// Tentpole: spill writes retry with backoff and relocate to the
    /// fallback directory; the cloud stays durable and reloads from there.
    #[test]
    fn spill_relocates_to_fallback_dir_and_reloads() {
        let blocker =
            std::env::temp_dir().join(format!("emst-serve-reloc-blocker-{}", std::process::id()));
        let fallback =
            std::env::temp_dir().join(format!("emst-serve-reloc-fallback-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let mut cfg = ServeConfig::new(3, 1);
        cfg.spill_dir = Some(blocker.join("spills")); // every primary write fails
        cfg.fallback_spill_dir = Some(fallback.clone());
        cfg.spill_retries = 2;
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);

        let a = random_points_2d(250, 78);
        let cold = engine.emst(&a);
        engine.emst(&random_points_2d(250, 79)); // evicts `a`
        let stats = engine.stats();
        assert_eq!(stats.spill_failures, 0, "the fallback saved durability");
        assert_eq!(stats.spill_relocations, 1);
        assert_eq!(stats.spill_retries, 2, "primary retried before relocating");
        assert!(spill::spill_path(&fallback, cold.key).exists());

        let back = engine.emst_by_key(cold.key).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, cold.edges);
        assert_eq!(engine.stats().artifact_restores, 1);
        std::fs::remove_file(&blocker).ok();
        std::fs::remove_dir_all(&fallback).ok();
    }

    /// Tentpole: an expired deadline is an honest `DeadlineExceeded` at a
    /// merge-round boundary — and the engine (accel, scratch, residency)
    /// stays fully servable afterwards.
    #[test]
    fn deadline_exceeded_is_honest_and_recoverable() {
        let a = random_points_2d(500, 80);
        let mut cfg = ServeConfig::new(3, 2);
        cfg.deadline = Some(Duration::ZERO); // every guarded merge is late
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);
        let key = engine.ingest(&a);
        assert!(matches!(engine.try_emst(&a), Err(ServeError::DeadlineExceeded(k)) if k == key));
        assert!(matches!(engine.emst_by_key(key), Err(ServeError::DeadlineExceeded(_))));
        assert!(matches!(
            engine.emst_subset_by_key(key, &(0..100).collect::<Vec<_>>()),
            Err(ServeError::DeadlineExceeded(_))
        ));
        assert_eq!(engine.stats().deadline_exceeded, 3);
        // The infallible positional wrapper shares the dispatch table but
        // not the guards: it cannot report an honest shed, so it takes no
        // deadline and answers exactly even under a zero budget.
        let positional = engine.emst(&a);
        assert_eq!(positional.key, key);
        assert_eq!(engine.stats().deadline_exceeded, 3);
        // k-NN has no merge rounds: even guarded it answers.
        assert!(engine.k_nearest_by_key(key, &a[0], 3).is_ok());
        assert_eq!(engine.scratch_pool.lock().len(), 1, "no scratch leaked past the deadline");
    }

    /// Tentpole: admission control sheds excess in-flight queries with
    /// `Overloaded` instead of queueing them.
    #[test]
    fn admission_control_sheds_over_the_in_flight_cap() {
        let a = random_points_2d(200, 81);
        let mut cfg = ServeConfig::new(2, 2);
        cfg.max_in_flight = 1;
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);
        let key = engine.ingest(&a);
        let gate = engine.admission_gate().unwrap(); // occupy the only slot
        assert!(matches!(engine.emst_by_key(key), Err(ServeError::Overloaded)));
        assert!(matches!(engine.try_emst(&a), Err(ServeError::Overloaded)));
        assert_eq!(engine.stats().shed, 2);
        drop(gate); // slot freed: queries admit again
        assert!(engine.emst_by_key(key).is_ok());
        assert_eq!(engine.stats().shed, 2);
        assert_eq!(engine.in_flight.load(Relaxed), 0, "every token released");
    }

    /// Tentpole: a panicking query is isolated to `QueryPanic` — the
    /// caller's thread survives, scratch returns to the pool, and the
    /// engine keeps serving.
    #[test]
    fn query_panics_are_isolated_to_errors() {
        let a = random_points_2d(200, 82);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 2));
        let key = engine.ingest(&a);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
                                                // An out-of-range subset index panics inside the merge machinery.
        let result = engine.emst_subset_by_key(key, &[0, 9999]);
        std::panic::set_hook(prev);
        match result {
            Err(ServeError::QueryPanic(msg)) => {
                assert!(msg.contains("out of range"), "payload carried through: {msg}")
            }
            other => panic!("expected QueryPanic, got {other:?}"),
        }
        assert_eq!(engine.stats().query_panics, 1);
        assert_eq!(engine.in_flight.load(Relaxed), 0);
        // Still serving, bit-identically, on the same resident.
        let ok = engine.emst_by_key(key).unwrap();
        assert_eq!(ok.outcome, CacheOutcome::Hit);
        assert_eq!(ok.edges.len(), 199);
    }

    /// Injected read faults surface as typed errors (or clean retries on
    /// re-presentation), and the fault plan's decisions are live.
    #[test]
    fn fault_plan_wired_through_the_engine() {
        let a = random_points_2d(250, 83);
        let plan = Arc::new(FaultPlan::new(11).with_rule(FaultSite::Read, FaultKind::BitFlip, 1.0));
        let mut cfg = ServeConfig::new(3, 1);
        cfg.fault_plan = Some(Arc::clone(&plan));
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);
        let cold = engine.emst(&a);
        engine.emst(&random_points_2d(250, 84)); // evicts `a` (write is clean)
                                                 // Every reload read has one bit flipped somewhere in the image.
                                                 // Wherever it lands the outcome must be *honest*: a typed error
                                                 // (header/points damage) or a bit-identical answer via rebuild
                                                 // (artifact-blob damage) — never wrong edges.
        match engine.emst_by_key(cold.key) {
            Ok(resp) => {
                assert_eq!(resp.edges, cold.edges);
                assert_eq!(engine.stats().artifact_rebuilds, 1);
            }
            Err(e) => assert!(
                matches!(e, ServeError::DigestMismatch(_) | ServeError::Spill(_)),
                "unexpected error: {e}"
            ),
        }
        assert!(plan.injected() > 0, "the plan really fired");
        assert!(engine.stats().checksum_failures >= 1, "the flip was detected and counted");
        // Re-presenting the points always recovers, whatever the read path
        // is doing.
        assert_eq!(engine.emst(&a).edges, cold.edges);
    }

    /// Evictions record spill-write durations and eviction events in the
    /// metrics, and the admitting query's trace carries the spill span.
    #[test]
    fn evictions_show_up_in_metrics_and_traces() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        engine.emst(&random_points_2d(200, 62));
        engine.emst(&random_points_2d(200, 63)); // budget 1: evicts the first
        let text = engine.metrics_prometheus();
        assert!(text.contains("emst_serve_cache_events_total{event=\"eviction\"} 1"), "{text}");
        assert!(text.contains("emst_serve_spill_write_seconds_count 1"));
        assert!(text.contains("emst_serve_eviction_seconds_count 1"));
        let traces = engine.recent_traces(1);
        assert!(traces[0].spans.iter().any(|s| s.name == "spill"));
    }

    /// Tentpole: `insert` delta-solves — the child cloud answers with an
    /// edge-weight multiset bit-identical to a from-scratch solve of the
    /// same points, most shards transfer verbatim, and the parent stays
    /// resident and servable.
    #[test]
    fn insert_delta_solves_and_matches_from_scratch() {
        use emst_core::edge::weight_multiset;
        let pts = random_points_2d(500, 90);
        let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(6, 4));
        let parent_key = engine.ingest(&pts);
        let parent_edges = engine.emst_by_key(parent_key).unwrap().edges;

        // Clustered inserts: all land near one point, dirtying few shards.
        let extra: Vec<Point<2>> =
            (0..6).map(|i| Point::new([pts[17][0] + 1e-4 * i as f32, pts[17][1]])).collect();
        let resp = engine.insert(parent_key, &extra).unwrap();
        assert_eq!(resp.n, 506);
        assert_ne!(resp.key, parent_key, "mutation mints a new content key");
        assert!(!resp.full_rebuild);
        assert!(!resp.dirty_shards.is_empty());
        assert!(resp.reused_shards >= 4, "clustered inserts reuse most shards");
        assert_eq!(resp.update.edges.len(), 505);
        assert_eq!(resp.points.len(), 506);

        // Bit-identical weight multiset vs a from-scratch solve.
        let fresh = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(6, 4));
        let scratch_solve = fresh.emst(&resp.points);
        assert_eq!(
            weight_multiset(&resp.update.edges),
            weight_multiset(&scratch_solve.edges),
            "incremental child must match from-scratch"
        );

        // The parent is still resident and still answers identically.
        assert_eq!(engine.emst_by_key(parent_key).unwrap().edges, parent_edges);
        let stats = engine.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.deletes, 0);
        // Follow-up queries on the child key are warm hits.
        let warm = engine.emst_by_key(resp.key).unwrap();
        assert_eq!(warm.outcome, CacheOutcome::Hit);
        assert_eq!(warm.edges, resp.update.edges);
    }

    /// Tentpole: `delete` compacts survivors, delta-solves only the
    /// shards that lost points, and matches a from-scratch solve.
    #[test]
    fn delete_delta_solves_and_matches_from_scratch() {
        use emst_core::edge::weight_multiset;
        let pts = random_points_2d(500, 91);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(6, 4));
        let key = engine.ingest(&pts);
        let resp = engine.delete(key, &[3, 499, 250]).unwrap();
        assert_eq!(resp.n, 497);
        assert_eq!(resp.points.len(), 497);
        assert_eq!(resp.update.edges.len(), 496);
        let fresh = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(6, 4));
        assert_eq!(
            weight_multiset(&resp.update.edges),
            weight_multiset(&fresh.emst(&resp.points).edges),
        );
        assert_eq!(engine.stats().deletes, 1);
        // Mutation ops populate their own latency histograms.
        let text = engine.metrics_prometheus();
        assert!(text.contains("emst_serve_op_seconds_count{op=\"delete\"} 1"), "{text}");
    }

    /// Malformed mutations are typed `InvalidRequest` errors, rejected
    /// before any engine state changes.
    #[test]
    fn invalid_mutations_are_typed_errors() {
        let pts = random_points_2d(100, 92);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let key = engine.ingest(&pts);
        assert!(matches!(
            engine.delete(key, &[100]),
            Err(ServeError::InvalidRequest(msg)) if msg.contains("out of range")
        ));
        assert!(matches!(
            engine.delete(key, &[5, 5]),
            Err(ServeError::InvalidRequest(msg)) if msg.contains("duplicate")
        ));
        let all: Vec<u32> = (0..99).collect();
        assert!(matches!(
            engine.delete(key, &all),
            Err(ServeError::InvalidRequest(msg)) if msg.contains("at least 2")
        ));
        // Unknown parent keys surface exactly like any by-key query.
        let missing = CloudKey::forged(0xbeef, 3);
        assert!(matches!(engine.insert(missing, &pts[..1]), Err(ServeError::UnknownKey(_))));
        assert_eq!(engine.num_resident(), 1, "failed mutations admit nothing");
        let stats = engine.stats();
        assert_eq!((stats.inserts, stats.deletes), (0, 0));
    }

    /// A repeated identical mutation resolves to the already-admitted
    /// child — a cache hit with no re-derivation.
    #[test]
    fn repeated_identical_mutation_hits_the_child() {
        let pts = random_points_2d(300, 93);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 4));
        let key = engine.ingest(&pts);
        let extra = [Point::new([0.123f32, -0.456]), Point::new([0.124f32, -0.457])];
        let first = engine.insert(key, &extra).unwrap();
        assert_eq!(first.update.outcome, CacheOutcome::Miss);
        let second = engine.insert(key, &extra).unwrap();
        assert_eq!(second.key, first.key);
        assert_eq!(second.update.outcome, CacheOutcome::Hit);
        assert!(second.dirty_shards.is_empty(), "a hit re-derives nothing");
        assert_eq!(second.update.edges, first.update.edges);
        assert_eq!(engine.stats().inserts, 2);
    }

    /// `execute` speaks `Load` and `Stats` directly (the REPL/wire path).
    #[test]
    fn execute_load_and_stats_roundtrip() {
        let pts = random_points_2d(200, 94);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let key = match engine.execute(ServeRequest::Load { points: &pts }) {
            Ok(ServeResponse::Loaded { key }) => key,
            other => panic!("expected Loaded, got {other:?}"),
        };
        assert_eq!(key, engine.key(&pts));
        match engine.execute(ServeRequest::Stats) {
            Ok(ServeResponse::Stats(s)) => {
                assert_eq!(s.resident, 1);
                assert!(s.resident_bytes > 0);
                assert_eq!(s.stats.misses, 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }
}
