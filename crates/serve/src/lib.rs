//! Long-lived EMST serving — resident shard artifacts behind a keyed cache.
//!
//! Every other entry point in this workspace is a *batch* solve: points in,
//! tree out, state gone. A service answering heavy repeated traffic wants
//! the opposite: ingest a cloud **once**, keep its expensive intermediate
//! state resident, and answer each query with only query-proportional work.
//! [`ServeEngine`] is that engine. Per resident cloud it holds exactly the
//! state the sharded solver would otherwise rebuild per call —
//!
//! - the Morton-range [`emst_shard::ShardPlan`],
//! - every shard's BVH (with its 4-wide rope-linked collapse) and local
//!   MST, bundled as [`emst_shard::ShardArtifacts`],
//! - the durable cross-query merge accelerator
//!   ([`emst_shard::MergeAccel`]: floors + candidates learned by earlier
//!   merges of the same cloud) —
//!
//! keyed by [`CloudKey`]: the **content digest** of the points paired with
//! the shard count (see [`spill`] for the keying scheme). Admission is
//! bounded by [`ServeConfig::max_resident`]; over budget, the
//! least-recently-used cloud is **evicted to the sharded spill-file
//! format** and can be transparently reloaded (and rebuilt — the build is
//! deterministic, so reloaded answers are bit-identical) on its next query.
//!
//! Queries against a resident cloud skip the local phase entirely:
//!
//! - [`ServeEngine::emst`] re-runs only the cross-shard merge (the
//!   response's [`QueryResponse::build_work`] is zero on a hit, and its
//!   `query_work` shows merge-only traversal stats);
//! - [`ServeEngine::emst_subset`] re-merges only the touched shards,
//!   re-solving just the partially-covered ones
//!   ([`emst_shard::ShardArtifacts::merge_subset`]);
//! - [`ServeEngine::k_nearest`] answers from the resident per-shard BVHs;
//! - [`ServeEngine::hdbscan`] reuses a warm scratch pool via
//!   [`emst_hdbscan::Hdbscan::fit_scratch`].
//!
//! # Concurrency
//!
//! Every query method takes `&self`: the engine is [`Sync`] and N threads
//! may query the same or different clouds simultaneously, with answers
//! bit-identical to a single-threaded engine. The split:
//!
//! - **Shared, read-mostly**: the resident list (`RwLock<Vec<Arc<_>>>`;
//!   queries take the read lock just long enough to clone an `Arc`,
//!   admission/eviction takes the write lock) and each resident's
//!   immutable points + artifacts.
//! - **Shared, write-merged**: each resident's [`emst_shard::MergeAccel`].
//!   A query copies it out under a read lock, runs the merge against the
//!   copy, and folds the round-1 harvest back in under a write lock —
//!   sound because any two queries that derive the same accel slot derive
//!   the same value (see the `MergeAccel` docs), so absorb order is
//!   irrelevant.
//! - **Per-thread**: Borůvka/merge scratch pools, checked out of a
//!   bounded free list per query and returned by an RAII guard on drop
//!   (also on the panic path), so warm queries still allocate nothing.
//! - **Single-flight builds**: concurrent requests for the same
//!   non-resident [`CloudKey`] coalesce on one build — one leader builds
//!   (outside all locks), the rest park on a condvar and re-check. The
//!   leader itself re-checks residency *after* winning its lease
//!   (double-checked locking): a thread that read "not resident", stalled,
//!   and won the next lease after the prior leader landed must serve the
//!   landed resident, not rebuild and admit a duplicate.
//!
//! All atomics (stats, LRU ticks) use relaxed ordering on purpose: they
//! are advisory counters and recency hints, and every correctness-bearing
//! handoff (artifacts, accel contents, resident list) goes through a
//! mutex/rwlock acquire-release pair.
//!
//! ```
//! use emst_datasets::{generate_2d, DatasetSpec};
//! use emst_exec::Threads;
//! use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};
//!
//! let pts = generate_2d(&DatasetSpec::uniform(800, 42));
//! let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
//!
//! let cold = engine.emst(&pts); // miss: plan + local solves + merge
//! assert_eq!(cold.outcome, CacheOutcome::Miss);
//! assert!(cold.build_work.iterations > 0);
//!
//! let warm = engine.emst(&pts); // hit: merge only, bit-identical edges
//! assert_eq!(warm.outcome, CacheOutcome::Hit);
//! assert!(warm.build_work.is_zero());
//! assert_eq!(warm.edges, cold.edges);
//!
//! // Mutating one coordinate changes the digest: no stale answers.
//! let mut other = pts.clone();
//! other[0][0] += 1.0;
//! assert_eq!(engine.emst(&other).outcome, CacheOutcome::Miss);
//! ```

pub mod spill;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

use emst_bvh::TraversalStats;
use emst_core::{BoruvkaScratch, Edge, EmstConfig};
use emst_exec::counters::CounterSnapshot;
use emst_exec::{ExecSpace, PhaseTimings};
use emst_geometry::{Point, Scalar};
use emst_hdbscan::{Hdbscan, HdbscanResult};
use emst_obs::{Counter, Gauge, Histogram, QueryTrace, Registry, SpanRecord, TraceRing};
use emst_shard::{MergeAccel, MergeScratch, ShardArtifacts, ShardConfig};
use parking_lot::{Condvar, Mutex, RwLock};

pub use spill::{digest_points, CloudKey};

/// Configuration of a serving engine.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Morton-range shards per resident cloud (clamped to at least 1).
    pub shards: usize,
    /// Admission budget: maximum number of simultaneously resident clouds
    /// (clamped to at least 1). The least-recently-used cloud is spilled
    /// when a new one needs the slot.
    pub max_resident: usize,
    /// Configuration forwarded to every local solve.
    pub emst: EmstConfig,
    /// Solve a cloud's shards concurrently during ingest.
    pub parallel_shards: bool,
    /// Directory for eviction spill files. `None` (the default) derives a
    /// process-unique directory under the system temp dir, removed when
    /// the engine is dropped; a caller-provided directory is left alone.
    pub spill_dir: Option<PathBuf>,
    /// Record lock-free metrics and per-query traces (on by default; see
    /// [`ServeEngine::metrics_prometheus`] and
    /// [`ServeEngine::recent_traces`]). Off removes every instrumentation
    /// probe from the query paths — the uninstrumented baseline the
    /// benchmark's overhead measurement compares against.
    pub observability: bool,
}

impl ServeConfig {
    /// Default configuration with `shards` shards and a residency budget.
    pub fn new(shards: usize, max_resident: usize) -> Self {
        Self {
            shards,
            max_resident,
            emst: EmstConfig::default(),
            parallel_shards: true,
            spill_dir: None,
            observability: true,
        }
    }
}

/// How the cache answered a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The cloud was resident: no build work at all.
    Hit,
    /// The cloud was unknown: ingested (plan + local solves) on this call.
    Miss,
    /// The cloud had been evicted: points reloaded from its spill file and
    /// artifacts rebuilt (deterministically, so answers are unchanged).
    Reloaded,
}

impl CacheOutcome {
    /// Lower-case name, as traces and the CLI report it.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Reloaded => "reload",
        }
    }
}

/// Lifetime cache statistics of an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered from resident artifacts.
    pub hits: u64,
    /// Queries that ingested a new cloud.
    pub misses: u64,
    /// Queries that reloaded an evicted cloud from its spill file.
    pub reloads: u64,
    /// Clouds evicted to spill files.
    pub evictions: u64,
    /// Eviction spill writes that failed (the cloud is dropped from
    /// durability: a later by-key query answers `UnknownKey`, never wrong
    /// data — but the loss is now counted and logged instead of silent).
    pub spill_failures: u64,
    /// Verified 64-bit digest collisions: admissions where a resident
    /// cloud shared the digest but not the bytes, forcing a salted key.
    pub digest_collisions: u64,
    /// Queries that parked on another thread's in-flight build of the
    /// same key instead of rebuilding it (single-flight coalescing); each
    /// also counts as a hit once the build lands.
    pub coalesced: u64,
}

impl ServeStats {
    /// Every stat as a `(name, value)` pair, in declaration order.
    ///
    /// The destructuring is deliberately exhaustive (no `..`): adding a
    /// field to [`ServeStats`] without extending this list is a compile
    /// error, so consumers that iterate the names — the CLI `stats`
    /// command, the metrics exporters — can never silently miss one.
    pub fn named_fields(&self) -> [(&'static str, u64); 7] {
        let ServeStats {
            hits,
            misses,
            reloads,
            evictions,
            spill_failures,
            digest_collisions,
            coalesced,
        } = *self;
        [
            ("hits", hits),
            ("misses", misses),
            ("reloads", reloads),
            ("evictions", evictions),
            ("spill_failures", spill_failures),
            ("digest_collisions", digest_collisions),
            ("coalesced", coalesced),
        ]
    }
}

/// Errors of the handle-based (`*_by_key`) query paths.
#[derive(Debug)]
pub enum ServeError {
    /// The key is neither resident nor spilled — the cloud was never
    /// ingested (or its spill file was removed).
    UnknownKey(CloudKey),
    /// The spill file exists but cannot be read back.
    Spill(std::io::Error),
    /// The spill file's contents no longer digest to the key — on-disk
    /// corruption; the engine refuses to serve wrong bits.
    DigestMismatch(CloudKey),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownKey(k) => write!(f, "unknown cloud {k}"),
            ServeError::Spill(e) => write!(f, "spill file unreadable: {e}"),
            ServeError::DigestMismatch(k) => write!(f, "spill file for {k} fails its digest"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Response of an EMST (full or subset) query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The tree edges, in original point indices.
    pub edges: Vec<Edge>,
    /// Sum of (non-squared) edge weights.
    pub total_weight: f64,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
    /// Work spent building artifacts **on this call** — zero on a cache
    /// hit (the warm-query signature: the local phase did not run).
    pub build_work: CounterSnapshot,
    /// Work spent answering the query itself (merge traversals, and for
    /// subset queries any partial re-solves).
    pub query_work: CounterSnapshot,
    /// Wall-clock phases of this call (`plan`/`local` only when the cloud
    /// was built or rebuilt, `merge`/`merge.*` always).
    pub timings: PhaseTimings,
    /// Heap bytes the cloud's resident artifacts occupy.
    pub resident_bytes: usize,
}

/// Response of a k-nearest-neighbour query.
#[derive(Clone, Debug)]
pub struct KnnResponse {
    /// `(original point index, squared distance)`, ascending; see
    /// [`emst_shard::ShardArtifacts::k_nearest`] for the tie rule.
    pub neighbors: Vec<(u32, Scalar)>,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
    /// Work spent building artifacts on this call (zero on a hit).
    pub build_work: CounterSnapshot,
    /// Traversal work of the k-NN itself.
    pub query_work: CounterSnapshot,
}

/// Response of an HDBSCAN* query.
#[derive(Debug)]
pub struct HdbscanResponse {
    /// The full clustering output.
    pub result: HdbscanResult,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
}

/// One resident cloud. `key`, `points` and `artifacts` are immutable for
/// the resident's whole life (any thread may read them through the `Arc`);
/// the accelerator is the one shared-mutable piece and sits behind its own
/// lock; `last_used` is a recency hint.
struct Resident<const D: usize> {
    key: CloudKey,
    points: Vec<Point<D>>,
    artifacts: ShardArtifacts<D>,
    /// Durable floors/candidates shared by every merge of this cloud.
    /// Queries copy it out, merge against the copy, and `absorb` the
    /// harvest back — never holding this lock during traversal work.
    accel: RwLock<MergeAccel>,
    /// Tick of the last query that touched this resident. Ticks come from
    /// one `fetch_add` clock, so they are unique engine-wide (ties are
    /// impossible) and the LRU minimum is unambiguous. `fetch_max` keeps
    /// the slot exact under concurrent touches.
    last_used: AtomicU64,
}

/// Per-thread mutable query state, checked out of the engine's free pool
/// for the duration of one query.
struct QueryScratch {
    boruvka: BoruvkaScratch,
    merge: MergeScratch,
    accel: MergeAccel,
}

impl QueryScratch {
    fn new() -> Self {
        Self {
            boruvka: BoruvkaScratch::new(),
            merge: MergeScratch::new(),
            accel: MergeAccel::new(),
        }
    }
}

/// Upper bound on pooled scratch sets. The pool otherwise grows to the
/// peak query concurrency ever seen and each entry can retain a
/// full-cloud accel copy, so it must not grow without bound.
const MAX_POOLED_SCRATCH: usize = 32;

/// A checked-out [`QueryScratch`] that returns itself to the pool on drop
/// — including on the unwind path, so a panicking merge (a convergence
/// assert, an accel debug_assert) cannot permanently leak its scratch.
struct ScratchGuard<'a> {
    pool: &'a Mutex<Vec<QueryScratch>>,
    scratch: Option<QueryScratch>,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        let mut pool = self.pool.lock();
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(self.scratch.take().expect("scratch present until drop"));
        }
    }
}

/// Rendezvous for single-flight builds: followers park on the condvar
/// until the leader marks the flight done.
struct BuildFlight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl BuildFlight {
    fn new() -> Self {
        Self { done: Mutex::new(false), cv: Condvar::new() }
    }

    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }

    fn finish(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }
}

/// Lifetime counters as atomics so `&self` queries can bump them; all
/// relaxed — see the module docs on ordering.
#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    reloads: AtomicU64,
    evictions: AtomicU64,
    spill_failures: AtomicU64,
    digest_collisions: AtomicU64,
    coalesced: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            reloads: self.reloads.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            spill_failures: self.spill_failures.load(Relaxed),
            digest_collisions: self.digest_collisions.load(Relaxed),
            coalesced: self.coalesced.load(Relaxed),
        }
    }
}

/// Capacity of the per-engine trace ring: enough to inspect a recent
/// burst of queries, bounded so a long-serving engine cannot grow.
const TRACE_CAPACITY: usize = 256;

/// The engine's observability bundle: a metrics [`Registry`] with every
/// handle pre-resolved (recording on the query path is relaxed-atomic,
/// never a name lookup), and the bounded ring of per-query traces. Built
/// once per engine when [`ServeConfig::observability`] is on.
struct ServeObs {
    registry: Registry,
    traces: TraceRing,
    /// Per-op-kind latency, `emst_serve_op_seconds{op="…"}`.
    op_emst: Arc<Histogram>,
    op_subset: Arc<Histogram>,
    op_knn: Arc<Histogram>,
    op_hdbscan: Arc<Histogram>,
    op_ingest: Arc<Histogram>,
    /// Cache events, `emst_serve_cache_events_total{event="…"}` —
    /// mirrors [`StatCells`] so the exposition needs no snapshot calls.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    reloads: Arc<Counter>,
    coalesced: Arc<Counter>,
    evictions: Arc<Counter>,
    spill_failures: Arc<Counter>,
    digest_collisions: Arc<Counter>,
    /// Algorithmic work per [`CounterSnapshot`] field,
    /// `emst_serve_work_total{counter="…"}`, in `named_fields` order.
    work: [Arc<Counter>; 9],
    scratch_checkouts: Arc<Counter>,
    scratch_pool_size: Arc<Gauge>,
    resident_clouds: Arc<Gauge>,
    resident_bytes: Arc<Gauge>,
    /// Acquisition waits on the shared locks,
    /// `emst_serve_lock_wait_seconds{lock="…"}`.
    lock_residents_read: Arc<Histogram>,
    lock_residents_write: Arc<Histogram>,
    lock_accel_read: Arc<Histogram>,
    lock_accel_write: Arc<Histogram>,
    lease_wait: Arc<Histogram>,
    spill_write: Arc<Histogram>,
    eviction: Arc<Histogram>,
}

impl ServeObs {
    fn new() -> Self {
        let registry = Registry::new();
        let op = |o: &str| registry.histogram(&format!("emst_serve_op_seconds{{op=\"{o}\"}}"));
        let event =
            |e: &str| registry.counter(&format!("emst_serve_cache_events_total{{event=\"{e}\"}}"));
        let lock =
            |l: &str| registry.histogram(&format!("emst_serve_lock_wait_seconds{{lock=\"{l}\"}}"));
        let work = CounterSnapshot::default().named_fields().map(|(name, _)| {
            registry.counter(&format!("emst_serve_work_total{{counter=\"{name}\"}}"))
        });
        Self {
            traces: TraceRing::new(TRACE_CAPACITY),
            op_emst: op("emst"),
            op_subset: op("subset"),
            op_knn: op("knn"),
            op_hdbscan: op("hdbscan"),
            op_ingest: op("ingest"),
            hits: event("hit"),
            misses: event("miss"),
            reloads: event("reload"),
            coalesced: event("coalesced"),
            evictions: event("eviction"),
            spill_failures: event("spill_failure"),
            digest_collisions: event("digest_collision"),
            work,
            scratch_checkouts: registry.counter("emst_serve_scratch_checkouts_total"),
            scratch_pool_size: registry.gauge("emst_serve_scratch_pool_size"),
            resident_clouds: registry.gauge("emst_serve_resident_clouds"),
            resident_bytes: registry.gauge("emst_serve_resident_bytes"),
            lock_residents_read: lock("residents.read"),
            lock_residents_write: lock("residents.write"),
            lock_accel_read: lock("accel.read"),
            lock_accel_write: lock("accel.write"),
            lease_wait: registry.histogram("emst_serve_lease_wait_seconds"),
            spill_write: registry.histogram("emst_serve_spill_write_seconds"),
            eviction: registry.histogram("emst_serve_eviction_seconds"),
            registry,
        }
    }

    fn op_histogram(&self, op: &str) -> &Histogram {
        match op {
            "emst" => &self.op_emst,
            "subset" => &self.op_subset,
            "knn" => &self.op_knn,
            "hdbscan" => &self.op_hdbscan,
            _ => &self.op_ingest,
        }
    }
}

/// The serving engine. See the crate docs — in particular the
/// "Concurrency" section for what is shared and what is per-thread.
pub struct ServeEngine<S: ExecSpace, const D: usize> {
    space: S,
    config: ServeConfig,
    residents: RwLock<Vec<Arc<Resident<D>>>>,
    /// Monotone recency clock; `fetch_add` hands every caller a distinct
    /// tick, so two residents can never tie on `last_used`.
    clock: AtomicU64,
    stats: StatCells,
    scratch_pool: Mutex<Vec<QueryScratch>>,
    builds: Mutex<HashMap<CloudKey, Arc<BuildFlight>>>,
    spill_dir: PathBuf,
    /// Whether `spill_dir` is engine-owned (removed on drop).
    owns_spill_dir: bool,
    /// Metrics + traces; `None` when [`ServeConfig::observability`] is
    /// off, which compiles every probe down to a branch on a `None`.
    obs: Option<ServeObs>,
}

/// Removes the flight from the in-flight map and releases its followers
/// when dropped — including on an error return or a panicking build, so a
/// dead leader can never wedge its followers.
struct FlightLease<'a, S: ExecSpace, const D: usize> {
    engine: &'a ServeEngine<S, D>,
    key: CloudKey,
    flight: Arc<BuildFlight>,
}

impl<S: ExecSpace, const D: usize> Drop for FlightLease<'_, S, D> {
    fn drop(&mut self) {
        self.engine.builds.lock().remove(&self.key);
        self.flight.finish();
    }
}

/// Outcome of one pass over the resident list for a `(digest, K)` pair.
enum Lookup<const D: usize> {
    /// A resident whose points verified equal byte-for-byte.
    Hit(Arc<Resident<D>>),
    /// No verified resident; admit under this key (salted past any
    /// colliding residents).
    Vacant(CloudKey),
}

impl<S: ExecSpace, const D: usize> ServeEngine<S, D> {
    /// Creates an engine on `space`. Nothing is resident yet; clouds are
    /// admitted by their first query (or [`Self::ingest`]).
    pub fn new(space: S, config: ServeConfig) -> Self {
        let (spill_dir, owns) = match &config.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => {
                static COUNTER: AtomicU64 = AtomicU64::new(0);
                let unique = COUNTER.fetch_add(1, Relaxed);
                let dir = std::env::temp_dir()
                    .join(format!("emst-serve-{}-{unique}", std::process::id()));
                (dir, true)
            }
        };
        let obs = config.observability.then(ServeObs::new);
        Self {
            space,
            config,
            residents: RwLock::new(vec![]),
            clock: AtomicU64::new(0),
            stats: StatCells::default(),
            scratch_pool: Mutex::new(vec![]),
            builds: Mutex::new(HashMap::new()),
            spill_dir,
            owns_spill_dir: owns,
            obs,
        }
    }

    /// The key `points` would be served under (content digest + `K`).
    pub fn key(&self, points: &[Point<D>]) -> CloudKey {
        CloudKey::minted(digest_points(points), self.num_shards())
    }

    /// Lifetime cache statistics.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Whether this engine records metrics and traces
    /// ([`ServeConfig::observability`]).
    pub fn observability_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Prometheus-style text exposition of every engine metric (per-op
    /// latency histograms with p50/p95/p99, cache events, work counters,
    /// lock waits, pool/resident gauges). Empty when observability is off.
    pub fn metrics_prometheus(&self) -> String {
        match &self.obs {
            Some(obs) => {
                self.refresh_gauges(obs);
                obs.registry.render_prometheus()
            }
            None => String::new(),
        }
    }

    /// The same metrics as a JSON document (counters, gauges, histogram
    /// summaries). `{}` when observability is off.
    pub fn metrics_json(&self) -> String {
        match &self.obs {
            Some(obs) => {
                self.refresh_gauges(obs);
                obs.registry.render_json()
            }
            None => "{}\n".to_string(),
        }
    }

    /// The `n` most recent per-query traces, newest first. Empty when
    /// observability is off.
    pub fn recent_traces(&self, n: usize) -> Vec<QueryTrace> {
        self.obs.as_ref().map(|o| o.traces.recent(n)).unwrap_or_default()
    }

    /// Gauges are sampled at export time (their values are cheap reads of
    /// engine state, not events) so an exposition is always current.
    fn refresh_gauges(&self, obs: &ServeObs) {
        obs.resident_clouds.set(self.num_resident() as u64);
        obs.resident_bytes.set(self.resident_bytes() as u64);
        obs.scratch_pool_size.set(self.scratch_pool.lock().len() as u64);
    }

    /// Runs `f` against the observability bundle when it exists — the
    /// single gate every instrumentation probe sits behind.
    #[inline]
    fn obs_event(&self, f: impl FnOnce(&ServeObs)) {
        if let Some(obs) = &self.obs {
            f(obs);
        }
    }

    /// A timestamp only when observability is on, so the off path never
    /// pays for a clock read.
    #[inline]
    fn obs_now(&self) -> Option<Instant> {
        self.obs.as_ref().map(|_| Instant::now())
    }

    /// Bridges a query's algorithmic work report into the per-counter
    /// metrics family.
    fn record_work(&self, work: &CounterSnapshot) {
        if let Some(obs) = &self.obs {
            for ((_, v), c) in work.named_fields().iter().zip(obs.work.iter()) {
                c.add(*v);
            }
        }
    }

    /// Records the finished query's latency and pushes its trace.
    fn finish_trace(
        &self,
        op: &'static str,
        key: CloudKey,
        outcome: CacheOutcome,
        start: Option<Instant>,
        spans: Vec<SpanRecord>,
    ) {
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            let total = start.elapsed();
            obs.op_histogram(op).record(total);
            obs.traces.push(QueryTrace {
                seq: 0,
                op,
                key: key.to_string(),
                outcome: outcome.as_str(),
                total_s: total.as_secs_f64(),
                spans,
            });
        }
    }

    /// Number of currently resident clouds.
    pub fn num_resident(&self) -> usize {
        self.residents.read().len()
    }

    /// Keys of the resident clouds, most recently used first. The sort is
    /// over at most `max_resident` snapshot pairs, and unique ticks (see
    /// `clock`) make the order total — no tie to break arbitrarily.
    pub fn resident_keys(&self) -> Vec<CloudKey> {
        let mut v: Vec<(u64, CloudKey)> =
            self.residents.read().iter().map(|r| (r.last_used.load(Relaxed), r.key)).collect();
        v.sort_by_key(|&(used, _)| std::cmp::Reverse(used));
        v.into_iter().map(|(_, k)| k).collect()
    }

    /// Total heap bytes of all resident state (artifacts + accelerators).
    pub fn resident_bytes(&self) -> usize {
        self.residents
            .read()
            .iter()
            .map(|r| r.artifacts.resident_bytes() + r.accel.read().resident_bytes())
            .sum()
    }

    fn num_shards(&self) -> usize {
        self.config.shards.max(1)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    fn touch(&self, r: &Resident<D>) {
        // `fetch_max`, not `store`: two racing touches keep the later
        // tick, so recency stays exact under concurrency.
        r.last_used.fetch_max(self.tick(), Relaxed);
    }

    fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            shards: self.num_shards(),
            emst: self.config.emst,
            parallel_shards: self.config.parallel_shards,
        }
    }

    fn checkout(&self) -> ScratchGuard<'_> {
        let (scratch, pooled) = {
            let mut pool = self.scratch_pool.lock();
            (pool.pop(), pool.len())
        };
        let scratch = scratch.unwrap_or_else(QueryScratch::new);
        self.obs_event(|o| {
            o.scratch_checkouts.inc();
            o.scratch_pool_size.set(pooled as u64);
        });
        ScratchGuard { pool: &self.scratch_pool, scratch: Some(scratch) }
    }

    /// One verified scan of the resident list for `(digest, K)`: a content
    /// match is a hit; otherwise the vacant key's salt skips past every
    /// colliding resident so two distinct clouds never alias.
    fn lookup(&self, digest: u64, points: &[Point<D>]) -> Lookup<D> {
        let shards = self.num_shards();
        let wait = self.obs_now();
        let residents = self.residents.read();
        if let (Some(obs), Some(wait)) = (&self.obs, wait) {
            obs.lock_residents_read.record(wait.elapsed());
        }
        let mut salt = 0u32;
        for r in residents.iter() {
            if r.key.digest != digest || r.key.shards != shards {
                continue;
            }
            // Digest equality is necessary but not sufficient: verify the
            // bytes (cheap at resident scale next to one merge round).
            if r.points.len() == points.len() && r.points == points {
                self.touch(r);
                return Lookup::Hit(Arc::clone(r));
            }
            salt = salt.max(r.key.salt + 1);
        }
        Lookup::Vacant(CloudKey { digest, shards, salt })
    }

    /// Extends `key.salt` past any spill file owned by a *different*
    /// cloud, so salts stay durable across eviction: without the probe, a
    /// distinct colliding cloud admitted after the original was spilled
    /// would claim salt 0, and its own eviction would overwrite the
    /// original's spill file — which a later by-key reload would then pass
    /// off as the original (a true collision shares the digest, so the
    /// reload digest check cannot catch it). A spill whose contents equal
    /// `points` is this cloud's own earlier eviction: its salt is reused.
    /// Unreadable or corrupt spill files are conservatively skipped.
    fn durable_salt(&self, mut key: CloudKey, points: &[Point<D>]) -> CloudKey {
        // Bounded so a spill dir that errors on every open (not per-file
        // corruption — e.g. permissions) cannot loop forever; past the
        // bound the eviction write itself will fail and be counted.
        for _ in 0..1024 {
            match spill::read_spill::<D>(&self.spill_dir, key) {
                Ok(None) => return key,
                Ok(Some(existing)) if existing == points => return key,
                Ok(Some(_)) | Err(_) => key.salt += 1,
            }
        }
        key
    }

    /// Joins (or starts) the single-flight build of `key`: `Err(flight)`
    /// means another thread is already building — park on it and re-check;
    /// `Ok(lease)` makes the caller the leader.
    fn begin_flight(&self, key: CloudKey) -> Result<FlightLease<'_, S, D>, Arc<BuildFlight>> {
        let mut builds = self.builds.lock();
        if let Some(flight) = builds.get(&key) {
            return Err(Arc::clone(flight));
        }
        let flight = Arc::new(BuildFlight::new());
        builds.insert(key, Arc::clone(&flight));
        Ok(FlightLease { engine: self, key, flight })
    }

    /// Builds artifacts for `points` (outside all engine locks) and admits
    /// the resident, evicting LRU clouds first when over budget.
    fn build_and_admit(
        &self,
        key: CloudKey,
        points: Vec<Point<D>>,
        spans: &mut Vec<SpanRecord>,
    ) -> (Arc<Resident<D>>, CounterSnapshot, PhaseTimings) {
        let built = self.obs_now();
        let artifacts = ShardArtifacts::build(&self.space, &points, &self.shard_config());
        let build_work = artifacts.build_work();
        let build_timings = artifacts.build_timings().clone();
        if let Some(built) = built {
            spans.push(SpanRecord {
                name: "build",
                secs: built.elapsed().as_secs_f64(),
                fields: vec![
                    ("points", points.len() as u64),
                    ("iterations", build_work.iterations),
                    ("distances", build_work.distance_computations),
                ],
            });
        }
        let accel = artifacts.new_accel();
        let resident = Arc::new(Resident {
            key,
            points,
            artifacts,
            accel: RwLock::new(accel),
            last_used: AtomicU64::new(self.tick()),
        });
        let mut victims = Vec::new();
        {
            let wait = self.obs_now();
            let mut residents = self.residents.write();
            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                obs.lock_residents_write.record(wait.elapsed());
            }
            let budget = self.config.max_resident.max(1);
            while residents.len() >= budget {
                let lru = residents
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.last_used.load(Relaxed))
                    .map(|(i, _)| i)
                    .expect("residents is non-empty");
                let victim = residents.swap_remove(lru);
                // Single-flight means at most one build per key is ever in
                // flight, and the leader re-checks residency after winning
                // its lease — so a key is only ever admitted while no
                // resident holds it, and an eviction racing a re-admission
                // of the same key cannot pick the key being admitted.
                assert_ne!(victim.key, key, "evicting the key being admitted");
                victims.push(victim);
            }
            residents.push(Arc::clone(&resident));
            let count = residents.len() as u64;
            self.obs_event(|o| o.resident_clouds.set(count));
        }
        // Spill writes (disk I/O, potentially many MB of CSV) happen
        // outside the residents lock — the victim `Arc`s keep the points
        // alive, and stalling every concurrent query on a file write would
        // defeat the read-mostly design. The window where a victim is
        // neither resident nor spilled only costs a transient `UnknownKey`
        // on its key, never wrong data.
        for victim in victims {
            let evicted = self.obs_now();
            let written = spill::write_spill(&self.spill_dir, victim.key, &victim.points);
            if let (Some(obs), Some(evicted)) = (&self.obs, evicted) {
                obs.spill_write.record(evicted.elapsed());
            }
            if let Err(e) = written {
                // A failed write only costs a later `UnknownKey`, never
                // wrong data — but it must not be silent.
                self.stats.spill_failures.fetch_add(1, Relaxed);
                self.obs_event(|o| o.spill_failures.inc());
                emst_obs::log::warn(
                    "emst-serve",
                    "spill write failed",
                    &[("key", &victim.key.to_string()), ("error", &e.to_string())],
                );
            }
            self.stats.evictions.fetch_add(1, Relaxed);
            if let (Some(obs), Some(evicted)) = (&self.obs, evicted) {
                let secs = evicted.elapsed().as_secs_f64();
                obs.evictions.inc();
                obs.eviction.record_secs(secs);
                spans.push(SpanRecord {
                    name: "spill",
                    secs,
                    fields: vec![("points", victim.points.len() as u64)],
                });
            }
        }
        (resident, build_work, build_timings)
    }

    /// Resolves `points` to a resident, admitting on a miss (coalescing
    /// concurrent misses for the same key onto one build).
    fn resolve(
        &self,
        points: &[Point<D>],
        spans: &mut Vec<SpanRecord>,
    ) -> (Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings) {
        let digested = self.obs_now();
        let digest = digest_points(points);
        if let Some(digested) = digested {
            spans.push(SpanRecord {
                name: "digest",
                secs: digested.elapsed().as_secs_f64(),
                fields: vec![("points", points.len() as u64)],
            });
        }
        self.resolve_digest_traced(digest, points, spans)
    }

    /// [`Self::resolve`] with the digest supplied by the caller — the seam
    /// the collision tests use to alias two distinct clouds.
    #[cfg(test)]
    fn resolve_digest(
        &self,
        digest: u64,
        points: &[Point<D>],
    ) -> (Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings) {
        self.resolve_digest_traced(digest, points, &mut Vec::new())
    }

    fn resolve_digest_traced(
        &self,
        digest: u64,
        points: &[Point<D>],
        spans: &mut Vec<SpanRecord>,
    ) -> (Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings) {
        let mut waited = false;
        loop {
            let key = match self.lookup(digest, points) {
                Lookup::Hit(r) => {
                    self.stats.hits.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.hits.inc());
                    if waited {
                        self.stats.coalesced.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.coalesced.inc());
                    }
                    return (r, CacheOutcome::Hit, CounterSnapshot::default(), PhaseTimings::new());
                }
                Lookup::Vacant(key) => key,
            };
            match self.begin_flight(key) {
                Err(flight) => {
                    let parked = self.obs_now();
                    flight.wait();
                    if let (Some(obs), Some(parked)) = (&self.obs, parked) {
                        let d = parked.elapsed();
                        obs.lease_wait.record(d);
                        spans.push(SpanRecord::new("lease.wait", d.as_secs_f64()));
                    }
                    waited = true;
                }
                Ok(_lease) => {
                    // Double-check under the lease: between our lookup and
                    // winning the flight, the previous leader may have
                    // landed this very key and dropped its flight. Without
                    // the re-check the late winner would rebuild and admit
                    // a duplicate resident — or, under salted keys, admit
                    // a *distinct* cloud at an already-taken salt.
                    match self.lookup(digest, points) {
                        Lookup::Hit(r) => {
                            self.stats.hits.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.hits.inc());
                            if waited {
                                self.stats.coalesced.fetch_add(1, Relaxed);
                                self.obs_event(|o| o.coalesced.inc());
                            }
                            return (
                                r,
                                CacheOutcome::Hit,
                                CounterSnapshot::default(),
                                PhaseTimings::new(),
                            );
                        }
                        // A colliding resident landed meanwhile and moved
                        // the free salt: drop this lease (releasing any
                        // followers to re-check) and retry with fresh keys.
                        Lookup::Vacant(fresh) if fresh != key => continue,
                        Lookup::Vacant(_) => {}
                    }
                    let key = self.durable_salt(key, points);
                    self.stats.misses.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.misses.inc());
                    if key.salt != 0 {
                        self.stats.digest_collisions.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.digest_collisions.inc());
                        emst_obs::log::warn(
                            "emst-serve",
                            "verified digest collision, admitting under salted key",
                            &[("key", &key.to_string()), ("salt", &key.salt.to_string())],
                        );
                    }
                    let (r, work, timings) = self.build_and_admit(key, points.to_vec(), spans);
                    return (r, CacheOutcome::Miss, work, timings);
                }
            }
        }
    }

    /// Resolves a key to a resident, reloading its spill on demand.
    fn resolve_key(
        &self,
        key: CloudKey,
        spans: &mut Vec<SpanRecord>,
    ) -> Result<(Arc<Resident<D>>, CacheOutcome, CounterSnapshot, PhaseTimings), ServeError> {
        // This engine's artifacts are always built with its own shard
        // count, so a key carrying any other `K` (say, minted by an engine
        // with a different config against a shared spill directory) can
        // never be served here — rebuilding would silently register a
        // `config.shards` partition under the foreign key.
        if key.shards != self.num_shards() {
            return Err(ServeError::UnknownKey(key));
        }
        let mut waited = false;
        loop {
            if let Some(r) = self.residents.read().iter().find(|r| r.key == key) {
                self.stats.hits.fetch_add(1, Relaxed);
                self.obs_event(|o| o.hits.inc());
                if waited {
                    self.stats.coalesced.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.coalesced.inc());
                }
                self.touch(r);
                return Ok((
                    Arc::clone(r),
                    CacheOutcome::Hit,
                    CounterSnapshot::default(),
                    PhaseTimings::new(),
                ));
            }
            match self.begin_flight(key) {
                Err(flight) => {
                    let parked = self.obs_now();
                    flight.wait();
                    if let (Some(obs), Some(parked)) = (&self.obs, parked) {
                        let d = parked.elapsed();
                        obs.lease_wait.record(d);
                        spans.push(SpanRecord::new("lease.wait", d.as_secs_f64()));
                    }
                    waited = true;
                }
                Ok(_lease) => {
                    // Double-check under the lease (see `resolve_digest`):
                    // the previous leader may have admitted this key
                    // between our residency check and winning the flight —
                    // reloading now would admit a duplicate resident.
                    if let Some(r) = self.residents.read().iter().find(|r| r.key == key) {
                        self.stats.hits.fetch_add(1, Relaxed);
                        self.obs_event(|o| o.hits.inc());
                        if waited {
                            self.stats.coalesced.fetch_add(1, Relaxed);
                            self.obs_event(|o| o.coalesced.inc());
                        }
                        self.touch(r);
                        return Ok((
                            Arc::clone(r),
                            CacheOutcome::Hit,
                            CounterSnapshot::default(),
                            PhaseTimings::new(),
                        ));
                    }
                    // Errors drop the lease, releasing any followers to
                    // retry (and fail) for themselves.
                    let points = spill::read_spill::<D>(&self.spill_dir, key)
                        .map_err(ServeError::Spill)?
                        .ok_or(ServeError::UnknownKey(key))?;
                    if digest_points(&points) != key.digest {
                        return Err(ServeError::DigestMismatch(key));
                    }
                    self.stats.reloads.fetch_add(1, Relaxed);
                    self.obs_event(|o| o.reloads.inc());
                    let (r, work, timings) = self.build_and_admit(key, points, spans);
                    return Ok((r, CacheOutcome::Reloaded, work, timings));
                }
            }
        }
    }

    /// Ingests `points` (builds and admits artifacts) without running a
    /// query, returning the key future queries can use. Re-ingesting a
    /// resident cloud is a no-op hit.
    pub fn ingest(&self, points: &[Point<D>]) -> CloudKey {
        let started = self.obs_now();
        let mut spans = Vec::new();
        let (r, outcome, build_work, _) = self.resolve(points, &mut spans);
        self.record_work(&build_work);
        self.finish_trace("ingest", r.key, outcome, started, spans);
        r.key
    }

    fn answer_emst(
        &self,
        r: &Resident<D>,
        outcome: CacheOutcome,
        build_work: CounterSnapshot,
        build_timings: PhaseTimings,
        spans: &mut Vec<SpanRecord>,
    ) -> QueryResponse {
        let mut scratch = self.checkout();
        // One reborrow through the guard so the borrow checker can split
        // `scratch.merge` / `scratch.accel` below.
        let scratch = &mut *scratch;
        // Copy-out / merge / absorb-back: the accel lock is only held for
        // the two memcpy-scale critical sections, never across traversals.
        {
            let wait = self.obs_now();
            let accel = r.accel.read();
            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                obs.lock_accel_read.record(wait.elapsed());
            }
            scratch.accel.copy_from(&accel);
        }
        let merged = r.artifacts.merge_accel(
            &self.space,
            self.config.emst.traversal,
            &mut scratch.merge,
            &mut scratch.accel,
        );
        if self.obs.is_some() {
            for d in &merged.stats.round_details {
                spans.push(SpanRecord {
                    name: "merge.round",
                    secs: d.secs,
                    fields: vec![
                        ("round", u64::from(d.round)),
                        ("queries", d.queries),
                        ("boundary", d.boundary),
                        ("nodes", d.stats.nodes),
                        ("leaves", d.stats.leaves),
                        ("distances", d.stats.distances),
                        ("skipped", d.stats.skipped),
                        ("rope_hops", d.stats.rope_hops),
                    ],
                });
            }
        }
        {
            let wait = self.obs_now();
            let mut accel = r.accel.write();
            if let (Some(obs), Some(wait)) = (&self.obs, wait) {
                obs.lock_accel_write.record(wait.elapsed());
            }
            let absorbed = self.obs_now();
            accel.absorb(&scratch.accel);
            if let Some(absorbed) = absorbed {
                spans.push(SpanRecord::new("absorb", absorbed.elapsed().as_secs_f64()));
            }
        }
        let mut timings = build_timings;
        timings.absorb(&merged.stats.timings);
        QueryResponse {
            edges: merged.edges,
            total_weight: merged.total_weight,
            outcome,
            key: r.key,
            build_work,
            query_work: merged.stats.work,
            timings,
            resident_bytes: r.artifacts.resident_bytes(),
        }
    }

    /// Full EMST of `points`. Warm path (the cloud is resident): merge
    /// only — no plan, no local solves, no tree builds; the edges are
    /// bit-identical to the cold solve because both are the same
    /// deterministic merge over the same artifacts.
    pub fn emst(&self, points: &[Point<D>]) -> QueryResponse {
        let started = self.obs_now();
        let mut spans = Vec::new();
        let (r, outcome, build_work, build_timings) = self.resolve(points, &mut spans);
        let resp = self.answer_emst(&r, outcome, build_work, build_timings, &mut spans);
        self.record_work(&(resp.build_work + resp.query_work));
        self.finish_trace("emst", resp.key, outcome, started, spans);
        resp
    }

    /// [`Self::emst`] by key: serves a previously ingested cloud without
    /// resending its points, transparently reloading from the spill file
    /// if the cloud was evicted.
    pub fn emst_by_key(&self, key: CloudKey) -> Result<QueryResponse, ServeError> {
        let started = self.obs_now();
        let mut spans = Vec::new();
        let (r, outcome, build_work, build_timings) = self.resolve_key(key, &mut spans)?;
        let resp = self.answer_emst(&r, outcome, build_work, build_timings, &mut spans);
        self.record_work(&(resp.build_work + resp.query_work));
        self.finish_trace("emst", resp.key, outcome, started, spans);
        Ok(resp)
    }

    /// Exact EMST of a subset of `points` (distinct original indices),
    /// re-merging only the touched shards; fully-covered shards reuse
    /// their resident BVH + local MST (see
    /// [`emst_shard::ShardArtifacts::merge_subset`]).
    ///
    /// # Panics
    /// On out-of-range or duplicate subset indices.
    pub fn emst_subset(&self, points: &[Point<D>], subset: &[u32]) -> QueryResponse {
        let started = self.obs_now();
        let mut spans = Vec::new();
        let (r, outcome, build_work, build_timings) = self.resolve(points, &mut spans);
        let mut scratch = self.checkout();
        let solved = self.obs_now();
        // The resident copy is the authoritative cloud (it digested equal).
        let sub = r.artifacts.merge_subset(
            &self.space,
            &r.points,
            subset,
            &self.config.emst,
            &mut scratch.boruvka,
        );
        if let Some(solved) = solved {
            spans.push(SpanRecord {
                name: "subset.solve",
                secs: solved.elapsed().as_secs_f64(),
                fields: vec![("subset", subset.len() as u64)],
            });
        }
        let mut timings = build_timings;
        timings.absorb(&sub.stats.timings);
        let resp = QueryResponse {
            edges: sub.edges,
            total_weight: sub.total_weight,
            outcome,
            key: r.key,
            build_work,
            query_work: sub.stats.work,
            timings,
            resident_bytes: r.artifacts.resident_bytes(),
        };
        self.record_work(&(resp.build_work + resp.query_work));
        self.finish_trace("subset", resp.key, outcome, started, spans);
        resp
    }

    /// The `k` nearest ingested points to `query`, answered from the
    /// resident per-shard BVHs.
    pub fn k_nearest(&self, points: &[Point<D>], query: &Point<D>, k: usize) -> KnnResponse {
        let started = self.obs_now();
        let mut spans = Vec::new();
        let (r, outcome, build_work, _) = self.resolve(points, &mut spans);
        let mut stats = TraversalStats::default();
        let neighbors = r.artifacts.k_nearest(query, k, &mut stats);
        let resp = KnnResponse {
            neighbors,
            outcome,
            key: r.key,
            build_work,
            query_work: CounterSnapshot {
                distance_computations: stats.distances,
                node_visits: stats.nodes,
                rope_hops: stats.rope_hops,
                leaf_visits: stats.leaves,
                subtrees_skipped: stats.skipped,
                queries: 1,
                ..CounterSnapshot::default()
            },
        };
        self.record_work(&(resp.build_work + resp.query_work));
        self.finish_trace("knn", resp.key, outcome, started, spans);
        resp
    }

    /// HDBSCAN* clustering of `points`, drawing the EMST pass's working
    /// arrays from a warm [`BoruvkaScratch`] ([`Hdbscan::fit_scratch`]) —
    /// repeated clusterings (parameter sweeps) stop paying per-call
    /// allocation, and the cloud stays resident for EMST/k-NN traffic.
    pub fn hdbscan(&self, points: &[Point<D>], params: Hdbscan) -> HdbscanResponse {
        let started = self.obs_now();
        let mut spans = Vec::new();
        let (r, outcome, build_work, _) = self.resolve(points, &mut spans);
        let mut scratch = self.checkout();
        let result = params.fit_scratch(&self.space, &r.points, &mut scratch.boruvka);
        self.record_work(&build_work);
        self.finish_trace("hdbscan", r.key, outcome, started, spans);
        HdbscanResponse { result, outcome, key: r.key }
    }
}

impl<S: ExecSpace, const D: usize> Drop for ServeEngine<S, D> {
    fn drop(&mut self) {
        if self.owns_spill_dir {
            std::fs::remove_dir_all(&self.spill_dir).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    /// The engine is shareable across threads by reference (the tentpole
    /// property behind every `&self` query).
    #[test]
    fn engine_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ServeEngine<Serial, 2>>();
        assert_sync::<ServeEngine<Threads, 3>>();
    }

    #[test]
    fn warm_queries_skip_the_local_phase_and_match_exactly() {
        let pts = random_points_2d(700, 1);
        let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
        let cold = engine.emst(&pts);
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        assert!(cold.build_work.iterations > 0);
        assert!(cold.timings.get("local") > 0.0);
        let warm = engine.emst(&pts);
        assert_eq!(warm.outcome, CacheOutcome::Hit);
        assert!(warm.build_work.is_zero());
        assert_eq!(warm.timings.get("plan"), 0.0);
        assert_eq!(warm.timings.get("local"), 0.0);
        assert!(warm.timings.get("merge") > 0.0);
        // Merge-only traversal stats: no solve iterations ran.
        assert_eq!(warm.query_work.iterations, 0);
        assert_eq!(warm.edges, cold.edges);
        // The shared accelerator only shrinks warm traversal work: a
        // second warm query re-derives nothing round 1 already proved.
        let warmer = engine.emst(&pts);
        assert_eq!(warmer.edges, cold.edges);
        assert!(warmer.query_work.queries <= warm.query_work.queries);
        assert_eq!(engine.stats(), ServeStats { hits: 2, misses: 1, ..Default::default() });
    }

    #[test]
    fn lru_eviction_spills_and_reloads_bit_identically() {
        let a = random_points_2d(300, 2);
        let b = random_points_2d(300, 3);
        let c = random_points_2d(300, 4);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let ra = engine.emst(&a);
        let key_a = ra.key;
        engine.emst(&b);
        engine.emst(&c); // budget 2: evicts `a` (LRU)
        assert_eq!(engine.num_resident(), 2);
        assert_eq!(engine.stats().evictions, 1);
        let back = engine.emst_by_key(key_a).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, ra.edges);
        assert_eq!(engine.stats().reloads, 1);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        let missing = CloudKey::forged(0xdead, 2);
        assert!(matches!(engine.emst_by_key(missing), Err(ServeError::UnknownKey(_))));
    }

    #[test]
    fn foreign_shard_count_keys_are_rejected() {
        // A key minted under a different K (e.g. by another engine sharing
        // a spill directory) must not be rebuilt with this engine's K and
        // registered under the foreign key.
        let pts = random_points_2d(200, 9);
        let dir = std::env::temp_dir().join(format!("emst-serve-k-test-{}", std::process::id()));
        let mut cfg8 = ServeConfig::new(8, 1);
        cfg8.spill_dir = Some(dir.clone());
        let e8 = ServeEngine::<_, 2>::new(Serial, cfg8);
        let key8 = e8.ingest(&pts);
        e8.emst(&random_points_2d(200, 10)); // evicts the first cloud to disk

        let mut cfg4 = ServeConfig::new(4, 1);
        cfg4.spill_dir = Some(dir.clone());
        let e4 = ServeEngine::<_, 2>::new(Serial, cfg4);
        assert!(matches!(e4.emst_by_key(key8), Err(ServeError::UnknownKey(k)) if k == key8));
        assert_eq!(e4.num_resident(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_then_query_by_key_is_warm() {
        let pts = random_points_2d(400, 5);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let key = engine.ingest(&pts);
        let r = engine.emst_by_key(key).unwrap();
        assert_eq!(r.outcome, CacheOutcome::Hit);
        assert!(r.build_work.is_zero());
        assert_eq!(r.edges.len(), 399);
    }

    #[test]
    fn resident_accounting_reports_bytes_and_keys() {
        let pts = random_points_2d(500, 6);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let key = engine.ingest(&pts);
        assert_eq!(engine.num_resident(), 1);
        assert_eq!(engine.resident_keys(), vec![key]);
        assert!(engine.resident_bytes() > 0);
        let r = engine.emst(&pts);
        assert!(r.resident_bytes > 0);
        assert!(r.resident_bytes <= engine.resident_bytes());
    }

    /// Satellite bugfix: eviction spill failures must be counted and must
    /// not corrupt the cache (the evicted cloud just loses durability).
    /// The spill dir nests under a regular *file*, so `create_dir_all`
    /// fails even when running as root (mode bits would not).
    #[test]
    fn spill_write_failures_are_counted_not_silent() {
        let blocker =
            std::env::temp_dir().join(format!("emst-serve-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let mut cfg = ServeConfig::new(3, 1);
        cfg.spill_dir = Some(blocker.join("spills"));
        let engine = ServeEngine::<_, 2>::new(Serial, cfg);

        let a = random_points_2d(200, 12);
        let b = random_points_2d(200, 13);
        let key_a = engine.ingest(&a);
        engine.emst(&b); // budget 1: evicts `a`, spill write must fail
        let stats = engine.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.spill_failures, 1);
        // The cloud lost durability — by-key now honestly errors (here the
        // unreadable dir surfaces as a spill I/O error; with a writable dir
        // that lost the file it would be `UnknownKey`) instead of serving
        // wrong or stale data…
        assert!(matches!(
            engine.emst_by_key(key_a),
            Err(ServeError::Spill(_) | ServeError::UnknownKey(_))
        ));
        // …but re-presenting the points still re-ingests and answers.
        assert_eq!(engine.emst(&a).outcome, CacheOutcome::Miss);
        std::fs::remove_file(&blocker).ok();
    }

    /// Satellite bugfix: a 64-bit digest collision must not alias two
    /// clouds onto one answer. Forced through the digest seam: both clouds
    /// resolve under the same digest, the second gets a salted key, and
    /// each keeps serving its own bits.
    #[test]
    fn verified_digest_collisions_get_salted_keys() {
        let a = random_points_2d(150, 20);
        let b = random_points_2d(150, 21);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 4));

        let (ra, oa, _, _) = engine.resolve_digest(0x42, &a);
        assert_eq!(oa, CacheOutcome::Miss);
        assert_eq!(ra.key, CloudKey { digest: 0x42, shards: 3, salt: 0 });

        // Same digest, different bytes: verified mismatch, salted admit.
        let (rb, ob, _, _) = engine.resolve_digest(0x42, &b);
        assert_eq!(ob, CacheOutcome::Miss);
        assert_eq!(rb.key, CloudKey { digest: 0x42, shards: 3, salt: 1 });
        assert_eq!(engine.stats().digest_collisions, 1);
        assert_eq!(format!("{}", rb.key), "0000000000000042/K3/s1");

        // Both clouds stay resident and each re-resolves to its own entry.
        let (ra2, oa2, _, _) = engine.resolve_digest(0x42, &a);
        let (rb2, ob2, _, _) = engine.resolve_digest(0x42, &b);
        assert_eq!((oa2, ob2), (CacheOutcome::Hit, CacheOutcome::Hit));
        assert_eq!(ra2.key.salt, 0);
        assert_eq!(rb2.key.salt, 1);
        assert_eq!(ra2.points, a);
        assert_eq!(rb2.points, b);
        // The hits did not mint new collisions.
        assert_eq!(engine.stats().digest_collisions, 1);

        // And the answers served under the colliding digest differ — the
        // aliasing bug would have returned `a`'s tree for `b`.
        let ea = self::answer(&engine, &ra2);
        let eb = self::answer(&engine, &rb2);
        assert_ne!(ea, eb);
    }

    fn answer(engine: &ServeEngine<Serial, 2>, r: &Resident<2>) -> Vec<Edge> {
        engine
            .answer_emst(
                r,
                CacheOutcome::Hit,
                CounterSnapshot::default(),
                PhaseTimings::new(),
                &mut vec![],
            )
            .edges
    }

    /// Satellite: the recency clock hands out unique ticks under
    /// contention — ties are impossible, so the LRU victim is unambiguous.
    #[test]
    fn clock_ticks_are_unique_across_threads() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        let per_thread = 2000;
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = &engine;
                    s.spawn(move || (0..per_thread).map(|_| engine.tick()).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "duplicate recency tick observed");
    }

    /// Tentpole: concurrent misses for one key coalesce on a single build.
    #[test]
    fn concurrent_same_cloud_queries_single_flight() {
        let pts = random_points_2d(800, 30);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let edges: Vec<Vec<Edge>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let (engine, pts) = (&engine, &pts);
                    s.spawn(move || engine.emst(pts).edges)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in &edges[1..] {
            assert_eq!(e, &edges[0]);
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 1, "exactly one thread may build");
        assert_eq!(stats.hits, 5, "everyone else must hit the landed build");
        assert_eq!(engine.num_resident(), 1);
    }

    /// Regression stress for the lookup→begin_flight TOCTOU: a thread that
    /// read "not resident", stalled, and won a lease after the prior
    /// leader landed must re-check and serve the landed resident. Without
    /// the double-check, the late winner re-admits the key — at budget 1
    /// the duplicate becomes the LRU victim of its own admission and trips
    /// the `assert_ne!` eviction guard (panicking the thread), and under
    /// salted keys a *distinct* cloud can land on a taken salt. Colliding
    /// digests + a tiny budget churn admissions to maximize the window.
    #[test]
    fn racing_admissions_never_duplicate_residents() {
        let a = random_points_2d(120, 50);
        let b = random_points_2d(120, 51);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let (engine, a, b) = (&engine, &a, &b);
                s.spawn(move || {
                    for r in 0..20 {
                        let pts = if (t + r) % 2 == 0 { a } else { b };
                        let (resident, _, _, _) = engine.resolve_digest(0x99, pts);
                        // Never the colliding cloud's data.
                        assert_eq!(&resident.points, pts, "thread {t} round {r}");
                    }
                });
            }
        });
        assert_eq!(engine.num_resident(), 1, "budget must hold after the churn");
        let stats = engine.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 20);
    }

    /// Satellite bugfix hardening: collision salts are durable across
    /// eviction. A distinct cloud under an already-spilled digest must not
    /// claim the spilled cloud's salt — its own eviction would overwrite
    /// that spill file, and a later by-key reload would pass the digest
    /// check (a true collision shares the digest) and silently serve the
    /// wrong cloud's points.
    #[test]
    fn evicted_collision_spills_keep_distinct_salts() {
        let a = random_points_2d(150, 40);
        let b = random_points_2d(150, 41);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        let k0 = CloudKey { digest: 0x7, shards: 3, salt: 0 };
        let k1 = CloudKey { digest: 0x7, shards: 3, salt: 1 };

        let (ra, _, _, _) = engine.resolve_digest(0x7, &a);
        assert_eq!(ra.key, k0);
        drop(ra);
        engine.resolve_digest(0x8, &random_points_2d(150, 42)); // budget 1: spills `a` at salt 0

        // `a` is no longer resident, so the resident scan alone would hand
        // `b` salt 0 — the spill probe must skip past `a`'s file.
        let (rb, ob, _, _) = engine.resolve_digest(0x7, &b);
        assert_eq!(ob, CacheOutcome::Miss);
        assert_eq!(rb.key, k1, "salt must skip a foreign spill");
        assert_eq!(engine.stats().digest_collisions, 1);
        drop(rb);
        engine.resolve_digest(0x9, &random_points_2d(150, 43)); // spills `b` at salt 1

        // Both spill files coexist, each holding its own cloud's points.
        assert_eq!(spill::read_spill::<2>(&engine.spill_dir, k0).unwrap().unwrap(), a);
        assert_eq!(spill::read_spill::<2>(&engine.spill_dir, k1).unwrap().unwrap(), b);

        // Re-presenting an evicted cloud reuses its own spill slot rather
        // than leaking a fresh salt per eviction cycle.
        let (ra2, oa2, _, _) = engine.resolve_digest(0x7, &a);
        assert_eq!(oa2, CacheOutcome::Miss);
        assert_eq!(ra2.key, k0);
        let (rb2, _, _, _) = engine.resolve_digest(0x7, &b);
        assert_eq!(rb2.key, k1);
    }

    /// The scratch pool is bounded and panic-safe: guards check their
    /// scratch back in on drop — including on the unwind path, so a
    /// panicking merge cannot permanently leak scratch — and check-in
    /// past the cap discards instead of growing without bound.
    #[test]
    fn scratch_pool_is_bounded_and_panic_safe() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        {
            let guards: Vec<_> = (0..MAX_POOLED_SCRATCH + 5).map(|_| engine.checkout()).collect();
            drop(guards);
        }
        assert_eq!(engine.scratch_pool.lock().len(), MAX_POOLED_SCRATCH);

        engine.scratch_pool.lock().clear();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.checkout();
            panic!("query panicked mid-merge");
        }));
        std::panic::set_hook(prev);
        assert!(caught.is_err());
        assert_eq!(engine.scratch_pool.lock().len(), 1, "unwound scratch must return");
    }

    /// Tentpole: queries populate the per-op histograms, cache-event
    /// counters, work counters and the trace ring, and the exposition
    /// carries quantile lines for the op family.
    #[test]
    fn queries_populate_metrics_and_traces() {
        let pts = random_points_2d(600, 60);
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        assert!(engine.observability_enabled());
        engine.emst(&pts); // miss
        engine.emst(&pts); // hit
        engine.k_nearest(&pts, &pts[0], 3);

        let text = engine.metrics_prometheus();
        assert!(text.contains("emst_serve_op_seconds_count{op=\"emst\"} 2"), "{text}");
        assert!(text.contains("emst_serve_op_seconds_p50{op=\"emst\"}"));
        assert!(text.contains("emst_serve_op_seconds_p99{op=\"emst\"}"));
        assert!(text.contains("emst_serve_op_seconds_count{op=\"knn\"} 1"));
        assert!(text.contains("emst_serve_cache_events_total{event=\"hit\"} 2"));
        assert!(text.contains("emst_serve_cache_events_total{event=\"miss\"} 1"));
        assert!(text.contains("emst_serve_scratch_checkouts_total 2"));
        assert!(text.contains("emst_serve_resident_clouds 1"));
        // Work counters bridge the exec counter snapshot field-for-field.
        assert!(text.contains("emst_serve_work_total{counter=\"distance_computations\"}"));
        assert!(text.contains("emst_serve_work_total{counter=\"heap_ops\"}"));

        let json = engine.metrics_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("p99_s"));

        // Newest-first traces: knn, then the warm emst with its merge
        // rounds and absorb, then the cold emst with its build span.
        let traces = engine.recent_traces(10);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].op, "knn");
        assert_eq!(traces[1].op, "emst");
        assert_eq!(traces[1].outcome, "hit");
        assert!(traces[1].spans.iter().any(|s| s.name == "digest"));
        assert!(traces[1].spans.iter().any(|s| s.name == "absorb"));
        let round = traces[1]
            .spans
            .iter()
            .find(|s| s.name == "merge.round")
            .expect("warm emst records merge rounds");
        assert_eq!(round.field("round"), Some(1));
        assert!(round.field("queries").is_some());
        assert!(round.field("distances").is_some());
        assert_eq!(traces[2].outcome, "miss");
        assert!(traces[2].spans.iter().any(|s| s.name == "build"));
    }

    /// The observability switch really removes the probes: answers stay
    /// bit-identical, exporters return empty documents.
    #[test]
    fn observability_off_serves_identically_with_empty_exporters() {
        let pts = random_points_2d(500, 61);
        let on = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let mut cfg = ServeConfig::new(4, 2);
        cfg.observability = false;
        let off = ServeEngine::<_, 2>::new(Serial, cfg);
        assert!(!off.observability_enabled());

        let (a, b) = (on.emst(&pts), off.emst(&pts));
        assert_eq!(a.edges, b.edges);
        let (a, b) = (on.emst(&pts), off.emst(&pts));
        assert_eq!(a.edges, b.edges);

        assert_eq!(off.metrics_prometheus(), "");
        assert_eq!(off.metrics_json(), "{}\n");
        assert!(off.recent_traces(5).is_empty());
        // ServeStats are part of the serving contract, not observability:
        // both engines count identically.
        assert_eq!(on.stats(), off.stats());
    }

    /// `ServeStats::named_fields` is the reflection seam the CLI `stats`
    /// command prints from; it must cover every field exactly once.
    #[test]
    fn serve_stats_named_fields_cover_every_field() {
        let stats = ServeStats {
            hits: 1,
            misses: 2,
            reloads: 3,
            evictions: 4,
            spill_failures: 5,
            digest_collisions: 6,
            coalesced: 7,
        };
        let fields = stats.named_fields();
        assert_eq!(fields.len(), 7);
        let sum: u64 = fields.iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, 28, "every field value appears exactly once");
        assert!(fields.iter().any(|&(n, v)| n == "digest_collisions" && v == 6));
        assert!(fields.iter().any(|&(n, v)| n == "coalesced" && v == 7));
    }

    /// Evictions record spill-write durations and eviction events in the
    /// metrics, and the admitting query's trace carries the spill span.
    #[test]
    fn evictions_show_up_in_metrics_and_traces() {
        let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 1));
        engine.emst(&random_points_2d(200, 62));
        engine.emst(&random_points_2d(200, 63)); // budget 1: evicts the first
        let text = engine.metrics_prometheus();
        assert!(text.contains("emst_serve_cache_events_total{event=\"eviction\"} 1"), "{text}");
        assert!(text.contains("emst_serve_spill_write_seconds_count 1"));
        assert!(text.contains("emst_serve_eviction_seconds_count 1"));
        let traces = engine.recent_traces(1);
        assert!(traces[0].spans.iter().any(|s| s.name == "spill"));
    }
}
