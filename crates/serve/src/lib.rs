//! Long-lived EMST serving — resident shard artifacts behind a keyed cache.
//!
//! Every other entry point in this workspace is a *batch* solve: points in,
//! tree out, state gone. A service answering heavy repeated traffic wants
//! the opposite: ingest a cloud **once**, keep its expensive intermediate
//! state resident, and answer each query with only query-proportional work.
//! [`ServeEngine`] is that engine. Per resident cloud it holds exactly the
//! state the sharded solver would otherwise rebuild per call —
//!
//! - the Morton-range [`emst_shard::ShardPlan`],
//! - every shard's BVH (with its 4-wide rope-linked collapse) and local
//!   MST, bundled as [`emst_shard::ShardArtifacts`],
//! - a warm [`emst_core::BoruvkaScratch`] allocation pool —
//!
//! keyed by [`CloudKey`]: the **content digest** of the points paired with
//! the shard count (see [`spill`] for the keying scheme). Admission is
//! bounded by [`ServeConfig::max_resident`]; over budget, the
//! least-recently-used cloud is **evicted to the sharded spill-file
//! format** and can be transparently reloaded (and rebuilt — the build is
//! deterministic, so reloaded answers are bit-identical) on its next query.
//!
//! Queries against a resident cloud skip the local phase entirely:
//!
//! - [`ServeEngine::emst`] re-runs only the cross-shard merge (the
//!   response's [`QueryResponse::build_work`] is zero on a hit, and its
//!   `query_work` shows merge-only traversal stats);
//! - [`ServeEngine::emst_subset`] re-merges only the touched shards,
//!   re-solving just the partially-covered ones
//!   ([`emst_shard::ShardArtifacts::merge_subset`]);
//! - [`ServeEngine::k_nearest`] answers from the resident per-shard BVHs;
//! - [`ServeEngine::hdbscan`] reuses the warm scratch pool via
//!   [`emst_hdbscan::Hdbscan::fit_scratch`].
//!
//! ```
//! use emst_datasets::{generate_2d, DatasetSpec};
//! use emst_exec::Threads;
//! use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};
//!
//! let pts = generate_2d(&DatasetSpec::uniform(800, 42));
//! let mut engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
//!
//! let cold = engine.emst(&pts); // miss: plan + local solves + merge
//! assert_eq!(cold.outcome, CacheOutcome::Miss);
//! assert!(cold.build_work.iterations > 0);
//!
//! let warm = engine.emst(&pts); // hit: merge only, bit-identical edges
//! assert_eq!(warm.outcome, CacheOutcome::Hit);
//! assert!(warm.build_work.is_zero());
//! assert_eq!(warm.edges, cold.edges);
//!
//! // Mutating one coordinate changes the digest: no stale answers.
//! let mut other = pts.clone();
//! other[0][0] += 1.0;
//! assert_eq!(engine.emst(&other).outcome, CacheOutcome::Miss);
//! ```

pub mod spill;

use std::path::PathBuf;

use emst_bvh::TraversalStats;
use emst_core::{BoruvkaScratch, Edge, EmstConfig};
use emst_exec::counters::CounterSnapshot;
use emst_exec::{ExecSpace, PhaseTimings};
use emst_geometry::{Point, Scalar};
use emst_hdbscan::{Hdbscan, HdbscanResult};
use emst_shard::{MergeScratch, ShardArtifacts, ShardConfig};

pub use spill::{digest_points, CloudKey};

/// Configuration of a serving engine.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Morton-range shards per resident cloud (clamped to at least 1).
    pub shards: usize,
    /// Admission budget: maximum number of simultaneously resident clouds
    /// (clamped to at least 1). The least-recently-used cloud is spilled
    /// when a new one needs the slot.
    pub max_resident: usize,
    /// Configuration forwarded to every local solve.
    pub emst: EmstConfig,
    /// Solve a cloud's shards concurrently during ingest.
    pub parallel_shards: bool,
    /// Directory for eviction spill files. `None` (the default) derives a
    /// process-unique directory under the system temp dir, removed when
    /// the engine is dropped; a caller-provided directory is left alone.
    pub spill_dir: Option<PathBuf>,
}

impl ServeConfig {
    /// Default configuration with `shards` shards and a residency budget.
    pub fn new(shards: usize, max_resident: usize) -> Self {
        Self {
            shards,
            max_resident,
            emst: EmstConfig::default(),
            parallel_shards: true,
            spill_dir: None,
        }
    }
}

/// How the cache answered a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The cloud was resident: no build work at all.
    Hit,
    /// The cloud was unknown: ingested (plan + local solves) on this call.
    Miss,
    /// The cloud had been evicted: points reloaded from its spill file and
    /// artifacts rebuilt (deterministically, so answers are unchanged).
    Reloaded,
}

/// Lifetime cache statistics of an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered from resident artifacts.
    pub hits: u64,
    /// Queries that ingested a new cloud.
    pub misses: u64,
    /// Queries that reloaded an evicted cloud from its spill file.
    pub reloads: u64,
    /// Clouds evicted to spill files.
    pub evictions: u64,
}

/// Errors of the handle-based (`*_by_key`) query paths.
#[derive(Debug)]
pub enum ServeError {
    /// The key is neither resident nor spilled — the cloud was never
    /// ingested (or its spill file was removed).
    UnknownKey(CloudKey),
    /// The spill file exists but cannot be read back.
    Spill(std::io::Error),
    /// The spill file's contents no longer digest to the key — on-disk
    /// corruption; the engine refuses to serve wrong bits.
    DigestMismatch(CloudKey),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownKey(k) => write!(f, "unknown cloud {k}"),
            ServeError::Spill(e) => write!(f, "spill file unreadable: {e}"),
            ServeError::DigestMismatch(k) => write!(f, "spill file for {k} fails its digest"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Response of an EMST (full or subset) query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The tree edges, in original point indices.
    pub edges: Vec<Edge>,
    /// Sum of (non-squared) edge weights.
    pub total_weight: f64,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
    /// Work spent building artifacts **on this call** — zero on a cache
    /// hit (the warm-query signature: the local phase did not run).
    pub build_work: CounterSnapshot,
    /// Work spent answering the query itself (merge traversals, and for
    /// subset queries any partial re-solves).
    pub query_work: CounterSnapshot,
    /// Wall-clock phases of this call (`plan`/`local` only when the cloud
    /// was built or rebuilt, `merge`/`merge.*` always).
    pub timings: PhaseTimings,
    /// Heap bytes the cloud's resident artifacts occupy.
    pub resident_bytes: usize,
}

/// Response of a k-nearest-neighbour query.
#[derive(Clone, Debug)]
pub struct KnnResponse {
    /// `(original point index, squared distance)`, ascending; see
    /// [`emst_shard::ShardArtifacts::k_nearest`] for the tie rule.
    pub neighbors: Vec<(u32, Scalar)>,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
    /// Work spent building artifacts on this call (zero on a hit).
    pub build_work: CounterSnapshot,
    /// Traversal work of the k-NN itself.
    pub query_work: CounterSnapshot,
}

/// Response of an HDBSCAN* query.
#[derive(Debug)]
pub struct HdbscanResponse {
    /// The full clustering output.
    pub result: HdbscanResult,
    /// How the cache answered.
    pub outcome: CacheOutcome,
    /// The queried cloud's key.
    pub key: CloudKey,
}

/// One resident cloud: points + artifacts + warm scratch.
struct Resident<const D: usize> {
    key: CloudKey,
    points: Vec<Point<D>>,
    artifacts: ShardArtifacts<D>,
    scratch: BoruvkaScratch,
    merge_scratch: MergeScratch,
    last_used: u64,
}

/// The serving engine. See the crate docs.
pub struct ServeEngine<S: ExecSpace, const D: usize> {
    space: S,
    config: ServeConfig,
    residents: Vec<Resident<D>>,
    clock: u64,
    stats: ServeStats,
    spill_dir: PathBuf,
    /// Whether `spill_dir` is engine-owned (removed on drop).
    owns_spill_dir: bool,
}

impl<S: ExecSpace, const D: usize> ServeEngine<S, D> {
    /// Creates an engine on `space`. Nothing is resident yet; clouds are
    /// admitted by their first query (or [`Self::ingest`]).
    pub fn new(space: S, config: ServeConfig) -> Self {
        let (spill_dir, owns) = match &config.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => {
                use std::sync::atomic::{AtomicU64, Ordering};
                static COUNTER: AtomicU64 = AtomicU64::new(0);
                let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
                let dir = std::env::temp_dir()
                    .join(format!("emst-serve-{}-{unique}", std::process::id()));
                (dir, true)
            }
        };
        Self {
            space,
            config,
            residents: vec![],
            clock: 0,
            stats: ServeStats::default(),
            spill_dir,
            owns_spill_dir: owns,
        }
    }

    /// The key `points` would be served under (content digest + `K`).
    pub fn key(&self, points: &[Point<D>]) -> CloudKey {
        CloudKey { digest: digest_points(points), shards: self.config.shards.max(1) }
    }

    /// Lifetime cache statistics.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Number of currently resident clouds.
    pub fn num_resident(&self) -> usize {
        self.residents.len()
    }

    /// Keys of the resident clouds, most recently used first.
    pub fn resident_keys(&self) -> Vec<CloudKey> {
        let mut v: Vec<(u64, CloudKey)> =
            self.residents.iter().map(|r| (r.last_used, r.key)).collect();
        v.sort_by_key(|&(used, _)| std::cmp::Reverse(used));
        v.into_iter().map(|(_, k)| k).collect()
    }

    /// Total heap bytes of all resident artifacts.
    pub fn resident_bytes(&self) -> usize {
        self.residents.iter().map(|r| r.artifacts.resident_bytes()).sum()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            shards: self.config.shards.max(1),
            emst: self.config.emst,
            parallel_shards: self.config.parallel_shards,
        }
    }

    /// Builds artifacts for `points` and admits them under `key`, evicting
    /// the LRU resident first when the budget is full. Returns the new
    /// resident's index plus the build work/timings spent on this call.
    fn admit(
        &mut self,
        key: CloudKey,
        points: Vec<Point<D>>,
    ) -> (usize, CounterSnapshot, PhaseTimings) {
        let budget = self.config.max_resident.max(1);
        while self.residents.len() >= budget {
            let lru = self
                .residents
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(i, _)| i)
                .expect("residents is non-empty");
            let victim = self.residents.swap_remove(lru);
            // Spill is best-effort durability for the handle-based path; a
            // failed write only costs a later UnknownKey, never wrong data.
            spill::write_spill(&self.spill_dir, victim.key, &victim.points).ok();
            self.stats.evictions += 1;
        }
        let artifacts = ShardArtifacts::build(&self.space, &points, &self.shard_config());
        let build_work = artifacts.build_work();
        let build_timings = artifacts.build_timings().clone();
        let last_used = self.tick();
        self.residents.push(Resident {
            key,
            points,
            artifacts,
            scratch: BoruvkaScratch::new(),
            merge_scratch: MergeScratch::new(),
            last_used,
        });
        (self.residents.len() - 1, build_work, build_timings)
    }

    /// Resolves `points` to a resident entry, admitting on a miss.
    fn resolve(
        &mut self,
        points: &[Point<D>],
    ) -> (usize, CacheOutcome, CounterSnapshot, PhaseTimings) {
        let key = self.key(points);
        if let Some(idx) = self.residents.iter().position(|r| r.key == key) {
            self.stats.hits += 1;
            let tick = self.tick();
            self.residents[idx].last_used = tick;
            return (idx, CacheOutcome::Hit, CounterSnapshot::default(), PhaseTimings::new());
        }
        self.stats.misses += 1;
        let (idx, work, timings) = self.admit(key, points.to_vec());
        (idx, CacheOutcome::Miss, work, timings)
    }

    /// Resolves a key to a resident entry, reloading its spill on demand.
    fn resolve_key(
        &mut self,
        key: CloudKey,
    ) -> Result<(usize, CacheOutcome, CounterSnapshot, PhaseTimings), ServeError> {
        // This engine's artifacts are always built with its own shard
        // count, so a key carrying any other `K` (say, minted by an engine
        // with a different config against a shared spill directory) can
        // never be served here — rebuilding would silently register a
        // `config.shards` partition under the foreign key.
        if key.shards != self.config.shards.max(1) {
            return Err(ServeError::UnknownKey(key));
        }
        if let Some(idx) = self.residents.iter().position(|r| r.key == key) {
            self.stats.hits += 1;
            let tick = self.tick();
            self.residents[idx].last_used = tick;
            return Ok((idx, CacheOutcome::Hit, CounterSnapshot::default(), PhaseTimings::new()));
        }
        let points = spill::read_spill::<D>(&self.spill_dir, key)
            .map_err(ServeError::Spill)?
            .ok_or(ServeError::UnknownKey(key))?;
        if digest_points(&points) != key.digest {
            return Err(ServeError::DigestMismatch(key));
        }
        self.stats.reloads += 1;
        let (idx, work, timings) = self.admit(key, points);
        Ok((idx, CacheOutcome::Reloaded, work, timings))
    }

    /// Ingests `points` (builds and admits artifacts) without running a
    /// query, returning the key future queries can use. Re-ingesting a
    /// resident cloud is a no-op hit.
    pub fn ingest(&mut self, points: &[Point<D>]) -> CloudKey {
        let (idx, _, _, _) = self.resolve(points);
        self.residents[idx].key
    }

    fn answer_emst(
        &mut self,
        idx: usize,
        outcome: CacheOutcome,
        build_work: CounterSnapshot,
        build_timings: PhaseTimings,
    ) -> QueryResponse {
        let r = &mut self.residents[idx];
        let merged = {
            let Resident { artifacts, merge_scratch, .. } = r;
            artifacts.merge_scratch(&self.space, self.config.emst.traversal, merge_scratch)
        };
        let mut timings = build_timings;
        timings.absorb(&merged.stats.timings);
        QueryResponse {
            edges: merged.edges,
            total_weight: merged.total_weight,
            outcome,
            key: r.key,
            build_work,
            query_work: merged.stats.work,
            timings,
            resident_bytes: r.artifacts.resident_bytes(),
        }
    }

    /// Full EMST of `points`. Warm path (the cloud is resident): merge
    /// only — no plan, no local solves, no tree builds; the edges are
    /// bit-identical to the cold solve because both are the same
    /// deterministic merge over the same artifacts.
    pub fn emst(&mut self, points: &[Point<D>]) -> QueryResponse {
        let (idx, outcome, build_work, build_timings) = self.resolve(points);
        self.answer_emst(idx, outcome, build_work, build_timings)
    }

    /// [`Self::emst`] by key: serves a previously ingested cloud without
    /// resending its points, transparently reloading from the spill file
    /// if the cloud was evicted.
    pub fn emst_by_key(&mut self, key: CloudKey) -> Result<QueryResponse, ServeError> {
        let (idx, outcome, build_work, build_timings) = self.resolve_key(key)?;
        Ok(self.answer_emst(idx, outcome, build_work, build_timings))
    }

    /// Exact EMST of a subset of `points` (distinct original indices),
    /// re-merging only the touched shards; fully-covered shards reuse
    /// their resident BVH + local MST (see
    /// [`emst_shard::ShardArtifacts::merge_subset`]).
    ///
    /// # Panics
    /// On out-of-range or duplicate subset indices.
    pub fn emst_subset(&mut self, points: &[Point<D>], subset: &[u32]) -> QueryResponse {
        let (idx, outcome, build_work, build_timings) = self.resolve(points);
        let emst_cfg = self.config.emst;
        let r = &mut self.residents[idx];
        // The resident copy is the authoritative cloud (it digested equal).
        let sub = {
            let Resident { points, artifacts, scratch, .. } = r;
            artifacts.merge_subset(&self.space, points, subset, &emst_cfg, scratch)
        };
        let mut timings = build_timings;
        timings.absorb(&sub.stats.timings);
        QueryResponse {
            edges: sub.edges,
            total_weight: sub.total_weight,
            outcome,
            key: r.key,
            build_work,
            query_work: sub.stats.work,
            timings,
            resident_bytes: r.artifacts.resident_bytes(),
        }
    }

    /// The `k` nearest ingested points to `query`, answered from the
    /// resident per-shard BVHs.
    pub fn k_nearest(&mut self, points: &[Point<D>], query: &Point<D>, k: usize) -> KnnResponse {
        let (idx, outcome, build_work, _) = self.resolve(points);
        let r = &self.residents[idx];
        let mut stats = TraversalStats::default();
        let neighbors = r.artifacts.k_nearest(query, k, &mut stats);
        KnnResponse {
            neighbors,
            outcome,
            key: r.key,
            build_work,
            query_work: CounterSnapshot {
                distance_computations: stats.distances,
                node_visits: stats.nodes,
                rope_hops: stats.rope_hops,
                leaf_visits: stats.leaves,
                subtrees_skipped: stats.skipped,
                queries: 1,
                ..CounterSnapshot::default()
            },
        }
    }

    /// HDBSCAN* clustering of `points`, drawing the EMST pass's working
    /// arrays from the cloud's warm [`BoruvkaScratch`]
    /// ([`Hdbscan::fit_scratch`]) — repeated clusterings (parameter
    /// sweeps) stop paying per-call allocation, and the cloud stays
    /// resident for EMST/k-NN traffic.
    pub fn hdbscan(&mut self, points: &[Point<D>], params: Hdbscan) -> HdbscanResponse {
        let (idx, outcome, _, _) = self.resolve(points);
        let r = &mut self.residents[idx];
        let result = {
            let Resident { points, scratch, .. } = r;
            params.fit_scratch(&self.space, points, scratch)
        };
        HdbscanResponse { result, outcome, key: r.key }
    }
}

impl<S: ExecSpace, const D: usize> Drop for ServeEngine<S, D> {
    fn drop(&mut self) {
        if self.owns_spill_dir {
            std::fs::remove_dir_all(&self.spill_dir).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn warm_queries_skip_the_local_phase_and_match_exactly() {
        let pts = random_points_2d(700, 1);
        let mut engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
        let cold = engine.emst(&pts);
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        assert!(cold.build_work.iterations > 0);
        assert!(cold.timings.get("local") > 0.0);
        let warm = engine.emst(&pts);
        assert_eq!(warm.outcome, CacheOutcome::Hit);
        assert!(warm.build_work.is_zero());
        assert_eq!(warm.timings.get("plan"), 0.0);
        assert_eq!(warm.timings.get("local"), 0.0);
        assert!(warm.timings.get("merge") > 0.0);
        // Merge-only traversal stats: queries ran, no solve iterations.
        assert!(warm.query_work.queries > 0);
        assert_eq!(warm.query_work.iterations, 0);
        assert_eq!(warm.edges, cold.edges);
        assert_eq!(engine.stats(), ServeStats { hits: 1, misses: 1, ..Default::default() });
    }

    #[test]
    fn lru_eviction_spills_and_reloads_bit_identically() {
        let a = random_points_2d(300, 2);
        let b = random_points_2d(300, 3);
        let c = random_points_2d(300, 4);
        let mut engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let ra = engine.emst(&a);
        let key_a = ra.key;
        engine.emst(&b);
        engine.emst(&c); // budget 2: evicts `a` (LRU)
        assert_eq!(engine.num_resident(), 2);
        assert_eq!(engine.stats().evictions, 1);
        let back = engine.emst_by_key(key_a).unwrap();
        assert_eq!(back.outcome, CacheOutcome::Reloaded);
        assert_eq!(back.edges, ra.edges);
        assert_eq!(engine.stats().reloads, 1);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let mut engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(2, 1));
        let missing = CloudKey { digest: 0xdead, shards: 2 };
        assert!(matches!(engine.emst_by_key(missing), Err(ServeError::UnknownKey(_))));
    }

    #[test]
    fn foreign_shard_count_keys_are_rejected() {
        // A key minted under a different K (e.g. by another engine sharing
        // a spill directory) must not be rebuilt with this engine's K and
        // registered under the foreign key.
        let pts = random_points_2d(200, 9);
        let dir = std::env::temp_dir().join(format!("emst-serve-k-test-{}", std::process::id()));
        let mut cfg8 = ServeConfig::new(8, 1);
        cfg8.spill_dir = Some(dir.clone());
        let mut e8 = ServeEngine::<_, 2>::new(Serial, cfg8);
        let key8 = e8.ingest(&pts);
        e8.emst(&random_points_2d(200, 10)); // evicts the first cloud to disk

        let mut cfg4 = ServeConfig::new(4, 1);
        cfg4.spill_dir = Some(dir.clone());
        let mut e4 = ServeEngine::<_, 2>::new(Serial, cfg4);
        assert!(matches!(e4.emst_by_key(key8), Err(ServeError::UnknownKey(k)) if k == key8));
        assert_eq!(e4.num_resident(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_then_query_by_key_is_warm() {
        let pts = random_points_2d(400, 5);
        let mut engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(3, 2));
        let key = engine.ingest(&pts);
        let r = engine.emst_by_key(key).unwrap();
        assert_eq!(r.outcome, CacheOutcome::Hit);
        assert!(r.build_work.is_zero());
        assert_eq!(r.edges.len(), 399);
    }

    #[test]
    fn resident_accounting_reports_bytes_and_keys() {
        let pts = random_points_2d(500, 6);
        let mut engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        let key = engine.ingest(&pts);
        assert_eq!(engine.num_resident(), 1);
        assert_eq!(engine.resident_keys(), vec![key]);
        assert!(engine.resident_bytes() > 0);
        let r = engine.emst(&pts);
        assert!(r.resident_bytes > 0);
        assert!(r.resident_bytes <= engine.resident_bytes());
    }
}
