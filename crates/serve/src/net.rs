//! Network serving front-end: a std-only TCP listener over [`ServeEngine`].
//!
//! [`ServeServer`] binds a [`std::net::TcpListener`] and speaks a
//! line-based request/response protocol with the same verbs as the CLI
//! REPL (`emst`, `subset`, `knn`, `hdbscan`, `insert`, `delete`, `load`,
//! `stats`, `metrics [json]`, `trace [n]`, plus `ping` and `quit`).
//! Every request is one `\n`-terminated line; every reply is one
//! `ok …`/`err …` line (multi-line payloads are length-framed as
//! `ok body <len>\n<bytes>`). The full grammar lives in
//! `docs/serving-protocol.md`.
//!
//! Design constraints and how they are met:
//!
//! - **No async runtime** (the container has no crates.io access): a
//!   blocking acceptor thread feeds a bounded queue drained by N worker
//!   threads. The engine's `Send + Sync` blocking core was built for
//!   exactly this shape.
//! - **Backpressure, never hangs**: when [`NetConfig::max_pending`]
//!   connections are already queued, a new connection gets one honest
//!   `err overloaded …` line and is closed — admission control at the
//!   socket layer, mirroring the engine's in-flight gate one layer down.
//! - **Robustness contract over the wire**: every verb dispatches through
//!   the one typed [`ServeEngine::execute`] entry point, so deadlines,
//!   admission shedding and panic isolation from the fault-tolerance
//!   layer all apply uniformly; its typed [`ServeError`](crate::ServeError)s
//!   become `err …` lines. Connection handling itself is
//!   wrapped in `catch_unwind`, so a protocol bug can never take down the
//!   acceptor or the other workers.
//! - **Graceful shutdown**: [`ServeServer::shutdown`] stops accepting,
//!   lets every in-flight request finish and flush its reply, sends
//!   queued-but-unstarted connections one `err shutting down` line, and
//!   joins every thread.
//!
//! # Same-key query coalescing
//!
//! The headline optimisation generalizes the engine's single-flight
//! *build* coalescing to whole *queries*: concurrent identical requests —
//! same [`CloudKey`] (the content digest of the session's cloud) and the
//! same canonicalized command line — register on one in-flight flight.
//! The first becomes the leader and executes; the rest park on a condvar
//! and receive a byte-for-byte copy of the leader's reply, counted in
//! [`ServeStats::query_coalesced`](crate::ServeStats::query_coalesced)
//! and the `emst_serve_cache_events_total{event="query_coalesced"}`
//! metric. This is sound because only the deterministic read-only verbs
//! (`emst`, `subset`, `knn`, `hdbscan`) coalesce, their replies are pure
//! functions of `(cloud bytes, command line)` by the engine's
//! bit-identity guarantee, and the reply format contains no wall-clock
//! fields. The mutation verbs (`insert`, `delete`) never coalesce: they
//! swap the session's cloud, so sharing a reply would desynchronize the
//! follower's session from the cloud its reply claims to describe. The one observable sharing artifact is the `cache=` outcome
//! (a follower may see the leader's `miss`) and error replies (a
//! follower shares the leader's honest `err …`, which an identical
//! concurrent request could equally have earned itself).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use emst_core::Edge;
use emst_datasets::io::{fnv1a_64, parse_csv, parse_xyz};
use emst_exec::ExecSpace;
use emst_geometry::Point;
use emst_hdbscan::Hdbscan;
use emst_obs::{Counter, Gauge, Histogram};
use parking_lot::{Condvar, Mutex};

use crate::fault::{faulted_read, FaultSite};
use crate::{
    CacheOutcome, CloudKey, CloudRef, MutateResponse, ServeEngine, ServeRequest, ServeResponse,
};

/// Longest accepted request line; anything longer gets one
/// `err line too long …` reply and the connection is closed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// How often a blocked worker re-checks the shutdown flag while waiting
/// for client bytes.
const READ_POLL: Duration = Duration::from_millis(50);

/// Network front-end sizing.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Worker threads draining the connection queue (clamped to >= 1).
    pub workers: usize,
    /// Connections allowed to wait for a worker before new arrivals are
    /// shed with an honest `err overloaded` line (clamped to >= 1).
    pub max_pending: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { workers: 4, max_pending: 64 }
    }
}

/// One reply on the wire: the exact bytes to send (always ending in a
/// newline) and whether the connection closes afterwards (`quit`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetReply {
    /// Full wire bytes of the reply, including the trailing newline (and,
    /// for `ok body <len>` framing, the raw body bytes).
    pub text: String,
    /// The server closes the connection after sending this reply.
    pub close: bool,
}

impl NetReply {
    fn ok(payload: impl AsRef<str>) -> Self {
        Self { text: format!("ok {}\n", payload.as_ref()), close: false }
    }

    fn err(message: impl AsRef<str>) -> Self {
        Self { text: format!("err {}\n", message.as_ref()), close: false }
    }

    /// Length-framed multi-line payload: `ok body <len>\n` followed by
    /// exactly `<len>` raw bytes (normalized to end in one newline).
    fn body(mut body: String) -> Self {
        while body.ends_with('\n') {
            body.pop();
        }
        body.push('\n');
        Self { text: format!("ok body {}\n{body}", body.len()), close: false }
    }

    /// Whether this is an `err …` reply (drives the error-reply counter).
    pub fn is_err(&self) -> bool {
        self.text.starts_with("err ")
    }

    /// The reply as raw wire bytes.
    pub fn bytes(&self) -> &[u8] {
        self.text.as_bytes()
    }
}

/// Per-connection state: the cloud this session queries. Starts as the
/// server's initial cloud; `load <path>`, `insert` and `delete` swap it
/// (for this connection only), exactly like the REPL's session cloud.
pub struct NetSession<const D: usize> {
    points: Arc<Vec<Point<D>>>,
}

impl<const D: usize> NetSession<D> {
    /// A session serving `points`.
    pub fn new(points: Arc<Vec<Point<D>>>) -> Self {
        Self { points }
    }

    /// The cloud the session currently queries.
    pub fn points(&self) -> &Arc<Vec<Point<D>>> {
        &self.points
    }
}

fn outcome_name(o: CacheOutcome) -> &'static str {
    match o {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Reloaded => "reloaded",
    }
}

/// Content check over an edge list: FNV-1a across `(u, v, weight_sq)` in
/// index order. Lets a client (and the bit-identity tests) compare trees
/// across transports without shipping every edge.
fn edges_check(edges: &[Edge]) -> u64 {
    let mut bytes = Vec::with_capacity(edges.len() * 12);
    for e in edges {
        bytes.extend_from_slice(&e.u.to_le_bytes());
        bytes.extend_from_slice(&e.v.to_le_bytes());
        bytes.extend_from_slice(&e.weight_sq.to_bits().to_le_bytes());
    }
    fnv1a_64(&bytes)
}

/// Content check over HDBSCAN labels (FNV-1a across the `i32` labels).
fn labels_check(labels: &[i32]) -> u64 {
    let mut bytes = Vec::with_capacity(labels.len() * 4);
    for &l in labels {
        bytes.extend_from_slice(&l.to_le_bytes());
    }
    fnv1a_64(&bytes)
}

/// Executes one request line against the engine and formats the wire
/// reply. This is the whole protocol in one pure-ish function: the
/// integration tests run it in-process to compute the bytes the socket
/// path must reproduce bit-for-bit.
///
/// Unlike the REPL, replies carry **no wall-clock fields** — instead the
/// tree-shaped answers carry a `check=` content digest — so identical
/// requests against identical clouds produce identical bytes, which is
/// what makes both the bit-identity proof and same-key coalescing
/// possible.
pub fn respond<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    session: &mut NetSession<D>,
    line: &str,
) -> NetReply {
    let mut tok = line.split_whitespace();
    let Some(cmd) = tok.next() else { return NetReply::err("empty command") };
    let rest: Vec<&str> = tok.collect();
    match execute(engine, session, cmd, &rest) {
        Ok(reply) => reply,
        Err(msg) => NetReply::err(msg),
    }
}

/// Formats the one-line `ok <verb> …` reply for a mutation. `dirty=` is
/// the number of shards the delta-solve actually re-solved (0 on a warm
/// child hit, `shards` on a full rebuild), and `check=` digests the
/// child cloud's EMST so clients can compare across transports.
fn mutation_reply<const D: usize>(verb: &str, m: &MutateResponse<D>) -> NetReply {
    NetReply::ok(format!(
        "{verb} key={} n={} dirty={} reused={} edges={} weight={:.6} check={:016x}",
        m.key,
        m.n,
        m.dirty_shards.len(),
        m.reused_shards,
        m.update.edges.len(),
        m.update.total_weight,
        edges_check(&m.update.edges),
    ))
}

fn execute<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    session: &mut NetSession<D>,
    cmd: &str,
    rest: &[&str],
) -> Result<NetReply, String> {
    let parse = |what: &str, v: Option<&&str>| -> Result<usize, String> {
        let v = v.ok_or(format!("{what} is required"))?;
        v.parse().map_err(|_| format!("invalid {what} {v:?}"))
    };
    let points = Arc::clone(&session.points);
    match cmd {
        "ping" => Ok(NetReply::ok("pong")),
        "quit" | "exit" => Ok(NetReply { text: "ok bye\n".to_string(), close: true }),
        "emst" => {
            if !rest.is_empty() {
                return Err("emst takes no arguments over the wire".to_string());
            }
            let req = ServeRequest::Emst { cloud: CloudRef::Points(points.as_slice()) };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Emst(r) => r,
                other => unreachable!("emst request answered with {other:?}"),
            };
            Ok(NetReply::ok(format!(
                "emst cache={} n={} edges={} weight={:.6} check={:016x}",
                outcome_name(r.outcome),
                points.len(),
                r.edges.len(),
                r.total_weight,
                edges_check(&r.edges),
            )))
        }
        "subset" => {
            let range = rest.first().ok_or("subset needs <lo>..<hi>")?;
            let (lo, hi) = range
                .split_once("..")
                .and_then(|(a, b)| Some((a.parse::<u32>().ok()?, b.parse::<u32>().ok()?)))
                .ok_or(format!("invalid subset range {range:?} (expected <lo>..<hi>)"))?;
            if lo >= hi || hi as usize > points.len() {
                return Err(format!("subset {lo}..{hi} out of range for {} points", points.len()));
            }
            let subset: Vec<u32> = (lo..hi).collect();
            let req = ServeRequest::Subset {
                cloud: CloudRef::Points(points.as_slice()),
                subset: &subset,
            };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Subset(r) => r,
                other => unreachable!("subset request answered with {other:?}"),
            };
            Ok(NetReply::ok(format!(
                "subset cache={} m={} edges={} weight={:.6} check={:016x}",
                outcome_name(r.outcome),
                subset.len(),
                r.edges.len(),
                r.total_weight,
                edges_check(&r.edges),
            )))
        }
        "knn" => {
            let k = parse("<k>", rest.first())?;
            if rest.len() != 1 + D {
                return Err(format!("knn needs <k> and {D} coordinates"));
            }
            let mut coords = [0.0f32; D];
            for (c, v) in coords.iter_mut().zip(&rest[1..]) {
                *c = v.parse().map_err(|_| format!("invalid coordinate {v:?}"))?;
            }
            let req = ServeRequest::KNearest {
                cloud: CloudRef::Points(points.as_slice()),
                query: Point::new(coords),
                k,
            };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::KNearest(r) => r,
                other => unreachable!("knn request answered with {other:?}"),
            };
            let hits: Vec<String> =
                r.neighbors.iter().map(|(i, d)| format!("{i}:{:.6}", d.sqrt())).collect();
            Ok(NetReply::ok(format!(
                "knn cache={} k={} {}",
                outcome_name(r.outcome),
                k,
                hits.join(" ")
            )))
        }
        "hdbscan" => {
            let k_pts = parse("<k_pts>", rest.first())?;
            let min_cluster_size = parse("<min_cluster_size>", rest.get(1))?;
            if k_pts < 1 || min_cluster_size < 2 {
                return Err("hdbscan needs k_pts >= 1 and min_cluster_size >= 2".into());
            }
            let req = ServeRequest::Hdbscan {
                cloud: CloudRef::Points(points.as_slice()),
                params: Hdbscan { k_pts, min_cluster_size },
            };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Hdbscan(r) => r,
                other => unreachable!("hdbscan request answered with {other:?}"),
            };
            let noise = r.result.labels.iter().filter(|&&l| l == emst_hdbscan::NOISE).count();
            Ok(NetReply::ok(format!(
                "hdbscan cache={} clusters={} noise={} check={:016x}",
                outcome_name(r.outcome),
                r.result.num_clusters,
                noise,
                labels_check(&r.result.labels),
            )))
        }
        "insert" => {
            if rest.is_empty() || !rest.len().is_multiple_of(D) {
                return Err(format!("insert needs coordinates in groups of {D}"));
            }
            let mut added = Vec::with_capacity(rest.len() / D);
            for chunk in rest.chunks(D) {
                let mut coords = [0.0f32; D];
                for (c, v) in coords.iter_mut().zip(chunk) {
                    *c = v.parse().map_err(|_| format!("invalid coordinate {v:?}"))?;
                }
                added.push(Point::new(coords));
            }
            let req =
                ServeRequest::Insert { cloud: CloudRef::Points(points.as_slice()), points: &added };
            let m = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Mutated(m) => m,
                other => unreachable!("insert request answered with {other:?}"),
            };
            let reply = mutation_reply("insert", &m);
            session.points = Arc::new(m.points);
            Ok(reply)
        }
        "delete" => {
            if rest.is_empty() {
                return Err("delete needs at least one <id>".to_string());
            }
            let mut ids = Vec::with_capacity(rest.len());
            for v in rest {
                ids.push(v.parse::<u32>().map_err(|_| format!("invalid id {v:?}"))?);
            }
            let req =
                ServeRequest::Delete { cloud: CloudRef::Points(points.as_slice()), ids: &ids };
            let m = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Mutated(m) => m,
                other => unreachable!("delete request answered with {other:?}"),
            };
            let reply = mutation_reply("delete", &m);
            session.points = Arc::new(m.points);
            Ok(reply)
        }
        "load" => {
            let path = rest.first().ok_or("load needs a path")?;
            // Ingest reads go through the fault plan: chaos drills cover the
            // network load path with the same injector as spill storage.
            let plan = engine.config.fault_plan.as_deref();
            let bytes = faulted_read(plan, FaultSite::IngestRead, Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            let new_points: Vec<Point<D>> = if path.ends_with(".xyz") {
                parse_xyz(&bytes, path)
            } else {
                parse_csv(&bytes, path)
            }
            .map_err(|e| e.to_string())?;
            if new_points.is_empty() {
                return Err(format!("{path}: no points"));
            }
            let req = ServeRequest::Load { points: &new_points };
            let key = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Loaded { key } => key,
                other => unreachable!("load request answered with {other:?}"),
            };
            session.points = Arc::new(new_points);
            Ok(NetReply::ok(format!("loaded n={} key={key}", session.points.len())))
        }
        "stats" => {
            let s = match engine.execute(ServeRequest::Stats).map_err(|e| e.to_string())? {
                ServeResponse::Stats(s) => s,
                other => unreachable!("stats request answered with {other:?}"),
            };
            let mut line = format!("stats resident={} bytes={}", s.resident, s.resident_bytes);
            for (name, value) in s.stats.named_fields() {
                line.push_str(&format!(" {name}={value}"));
            }
            Ok(NetReply::ok(line))
        }
        "metrics" => match rest.first() {
            None => Ok(NetReply::body(engine.metrics_prometheus())),
            Some(&"json") => Ok(NetReply::body(engine.metrics_json())),
            Some(other) => Err(format!("invalid metrics format {other:?} (expected json)")),
        },
        "trace" => {
            let n = match rest.first() {
                None => 5,
                Some(v) => v.parse().map_err(|_| format!("invalid trace count {v:?}"))?,
            };
            let traces = engine.recent_traces(n);
            if traces.is_empty() {
                return Ok(NetReply::ok("no traces recorded"));
            }
            let rendered: Vec<String> = traces.iter().map(|t| t.render_text()).collect();
            Ok(NetReply::body(rendered.join("\n")))
        }
        other => Err(format!(
            "unknown command {other:?} (ping | emst | subset <lo>..<hi> | knn <k> <x> <y> [<z>] \
             | hdbscan <k_pts> <min_cluster_size> | insert <x> <y> [<z>] … | delete <id> … | \
             load <points.csv> | stats | metrics [json] | trace [n] | quit)"
        )),
    }
}

/// Verbs eligible for same-key coalescing: deterministic, read-only, and
/// replies that are pure functions of `(cloud, line)`. `load`, `insert`
/// and `delete` mutate the session, `stats`/`metrics`/`trace` read
/// mutable observability state — none of those may share a reply.
fn coalescable(verb: &str) -> bool {
    matches!(verb, "emst" | "subset" | "knn" | "hdbscan")
}

type FlightKey = (CloudKey, String);

/// One in-flight coalesced query: the leader publishes its reply here and
/// wakes every parked follower.
struct QueryFlight {
    reply: Mutex<Option<NetReply>>,
    published: Condvar,
}

/// The leader's obligation to publish. Dropping without publishing (the
/// leader's execution panicked out from under it) publishes an honest
/// internal error so followers can never wedge.
struct FlightLease<'a> {
    flights: &'a Mutex<HashMap<FlightKey, Arc<QueryFlight>>>,
    key: Option<FlightKey>,
    flight: Arc<QueryFlight>,
}

impl FlightLease<'_> {
    fn settle(&mut self, reply: NetReply) {
        let Some(key) = self.key.take() else { return };
        // Remove before publishing: a request arriving after removal
        // starts a fresh flight, which is correct — the coalescing window
        // is exactly "concurrent with the leader's execution".
        self.flights.lock().remove(&key);
        *self.flight.reply.lock() = Some(reply);
        self.flight.published.notify_all();
    }
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        self.settle(NetReply::err("internal error: coalesced request aborted"));
    }
}

/// Handles owned by the server when observability is on. All metrics live
/// in the engine's registry, so `metrics`/`metrics json` over the wire —
/// and the `--metrics-file` exposition — include the network layer.
struct NetObs {
    /// Acceptor-side wait per accepted connection.
    accept: Arc<Histogram>,
    /// Time a connection spent queued before a worker picked it up.
    queue_wait: Arc<Histogram>,
    /// Wall time per request (read done → reply written).
    request: Arc<Histogram>,
    /// Connections currently being served by workers.
    active: Arc<Gauge>,
    /// Connections currently waiting in the accept queue.
    queued: Arc<Gauge>,
    connections: Arc<Counter>,
    overloaded: Arc<Counter>,
    requests: Arc<Counter>,
    error_replies: Arc<Counter>,
}

impl NetObs {
    fn new<S: ExecSpace, const D: usize>(engine: &ServeEngine<S, D>) -> Option<Self> {
        let registry = engine.obs_registry()?;
        Some(Self {
            accept: registry.histogram("emst_serve_net_accept_seconds"),
            queue_wait: registry.histogram("emst_serve_net_queue_wait_seconds"),
            request: registry.histogram("emst_serve_net_request_seconds"),
            active: registry.gauge("emst_serve_net_connections_active"),
            queued: registry.gauge("emst_serve_net_connections_queued"),
            connections: registry.counter("emst_serve_net_connections_total"),
            overloaded: registry.counter("emst_serve_net_overloaded_total"),
            requests: registry.counter("emst_serve_net_requests_total"),
            error_replies: registry.counter("emst_serve_net_error_replies_total"),
        })
    }
}

/// State shared by the acceptor, the workers and the shutdown path.
struct NetShared<S: ExecSpace, const D: usize> {
    engine: Arc<ServeEngine<S, D>>,
    initial: Arc<Vec<Point<D>>>,
    max_pending: usize,
    /// Accepted connections waiting for a worker, with their enqueue time.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    flights: Mutex<HashMap<FlightKey, Arc<QueryFlight>>>,
    active: AtomicU64,
    obs: Option<NetObs>,
}

/// The TCP front-end. See the module docs for the protocol and the
/// coalescing argument; see [`ServeServer::bind`] to start one.
pub struct ServeServer<S: ExecSpace + Send + Sync + 'static, const D: usize> {
    shared: Arc<NetShared<S, D>>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl<S: ExecSpace + Send + Sync + 'static, const D: usize> ServeServer<S, D> {
    /// Binds `addr` (use port 0 for an ephemeral port — [`Self::local_addr`]
    /// reports the real one) and starts the acceptor plus
    /// [`NetConfig::workers`] worker threads. `initial` is the cloud every
    /// new connection's session starts on; the caller is expected to have
    /// ingested it already (the server never ingests on its own).
    pub fn bind(
        engine: Arc<ServeEngine<S, D>>,
        initial: Arc<Vec<Point<D>>>,
        addr: &str,
        config: NetConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let obs = NetObs::new(engine.as_ref());
        let shared = Arc::new(NetShared {
            engine,
            initial,
            max_pending: config.max_pending.max(1),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            flights: Mutex::new(HashMap::new()),
            active: AtomicU64::new(0),
            obs,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Self { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<ServeEngine<S, D>> {
        &self.shared.engine
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests and
    /// flush their replies, answer queued-but-unstarted connections with
    /// one `err shutting down` line, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Relaxed) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.queue_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone: whatever is still queued never started, and
        // gets the honest line instead of a silent hang.
        let mut queue = self.shared.queue.lock();
        for (mut stream, _) in queue.drain(..) {
            let _ = stream.write_all(b"err shutting down\n");
        }
    }
}

impl<S: ExecSpace + Send + Sync + 'static, const D: usize> Drop for ServeServer<S, D> {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop<S: ExecSpace, const D: usize>(shared: &NetShared<S, D>, listener: &TcpListener) {
    loop {
        let idle_from = Instant::now();
        let accepted = listener.accept();
        if shared.shutdown.load(Relaxed) {
            // Usually the shutdown wake-up connection; a real client
            // racing shutdown gets the honest line either way.
            if let Ok((mut stream, _)) = accepted {
                let _ = stream.write_all(b"err shutting down\n");
            }
            return;
        }
        let Ok((mut stream, _)) = accepted else { continue };
        if let Some(obs) = &shared.obs {
            obs.accept.record(idle_from.elapsed());
            obs.connections.inc();
        }
        let mut queue = shared.queue.lock();
        if queue.len() >= shared.max_pending {
            drop(queue);
            if let Some(obs) = &shared.obs {
                obs.overloaded.inc();
            }
            let _ = stream.write_all(
                format!("err overloaded: {} connections already pending\n", shared.max_pending)
                    .as_bytes(),
            );
            continue; // dropping the stream closes it
        }
        queue.push_back((stream, Instant::now()));
        if let Some(obs) = &shared.obs {
            obs.queued.set(queue.len() as u64);
        }
        drop(queue);
        shared.queue_ready.notify_one();
    }
}

fn worker_loop<S: ExecSpace, const D: usize>(shared: &NetShared<S, D>) {
    loop {
        let (stream, enqueued) = {
            let mut queue = shared.queue.lock();
            loop {
                if shared.shutdown.load(Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    if let Some(obs) = &shared.obs {
                        obs.queued.set(queue.len() as u64);
                    }
                    break job;
                }
                shared.queue_ready.wait(&mut queue);
            }
        };
        if let Some(obs) = &shared.obs {
            obs.queue_wait.record(enqueued.elapsed());
            obs.active.set(shared.active.fetch_add(1, Relaxed) + 1);
        }
        // Panic isolation per connection: the guarded query paths already
        // contain query panics, so this only catches protocol-layer bugs —
        // and even then the worker survives to serve the next connection.
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| handle_connection(shared, &stream)));
        if outcome.is_err() {
            let _ = (&stream).write_all(b"err internal error: connection handler panicked\n");
        }
        if let Some(obs) = &shared.obs {
            obs.active.set(shared.active.fetch_sub(1, Relaxed).saturating_sub(1));
        }
    }
}

/// What the incremental line reader produced.
enum ReadEvent {
    /// One request line (terminator stripped; lossy UTF-8).
    Line(String),
    /// Clean end of stream with no buffered partial line.
    Eof,
    /// The server is shutting down; stop reading.
    Shutdown,
    /// The buffered line exceeded [`MAX_LINE_BYTES`] with no terminator.
    TooLong,
}

/// Reads the next `\n`-terminated line from `reader`, polling `shutdown`
/// on every read timeout. Split and partial writes are handled naturally
/// (bytes accumulate in `buf` across reads); a final unterminated line at
/// EOF is served as a line. `reader` must be in timeout mode for the
/// shutdown poll to fire (the unit tests drive it with plain readers,
/// which simply never time out).
fn next_line<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> io::Result<ReadEvent> {
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = buf.drain(..=pos).collect();
            line.pop(); // the terminator
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(ReadEvent::Line(String::from_utf8_lossy(&line).into_owned()));
        }
        if buf.len() > MAX_LINE_BYTES {
            return Ok(ReadEvent::TooLong);
        }
        let mut chunk = [0u8; 4096];
        match reader.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(ReadEvent::Eof);
                }
                let line = std::mem::take(buf);
                return Ok(ReadEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shutdown.load(Relaxed) {
                    return Ok(ReadEvent::Shutdown);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection<S: ExecSpace, const D: usize>(shared: &NetShared<S, D>, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut session = NetSession::new(Arc::clone(&shared.initial));
    let mut buf = Vec::new();
    let mut reader = stream;
    loop {
        match next_line(&mut reader, &mut buf, &shared.shutdown) {
            Ok(ReadEvent::Line(line)) => {
                let started = Instant::now();
                let reply = respond_coalesced(shared, &mut session, &line);
                if let Some(obs) = &shared.obs {
                    obs.requests.inc();
                    obs.request.record(started.elapsed());
                    if reply.is_err() {
                        obs.error_replies.inc();
                    }
                }
                // A client gone mid-response is its own problem: close
                // this connection, keep serving the rest.
                if (&*stream).write_all(reply.bytes()).is_err() || reply.close {
                    return;
                }
            }
            Ok(ReadEvent::Eof) => return,
            Ok(ReadEvent::Shutdown) => {
                let _ = (&*stream).write_all(b"err shutting down\n");
                return;
            }
            Ok(ReadEvent::TooLong) => {
                let _ = (&*stream).write_all(
                    format!("err line too long (max {MAX_LINE_BYTES} bytes)\n").as_bytes(),
                );
                if let Some(obs) = &shared.obs {
                    obs.error_replies.inc();
                }
                return;
            }
            Err(_) => return,
        }
    }
}

/// [`respond`] with same-key coalescing on top: identical concurrent
/// requests for the deterministic verbs share one execution.
fn respond_coalesced<S: ExecSpace, const D: usize>(
    shared: &NetShared<S, D>,
    session: &mut NetSession<D>,
    line: &str,
) -> NetReply {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens.first() {
        Some(verb) if coalescable(verb) => {}
        _ => return respond(shared.engine.as_ref(), session, line),
    }
    let key: FlightKey = (shared.engine.key(&session.points), tokens.join(" "));
    enum Role<'a> {
        Leader(FlightLease<'a>),
        Follower(Arc<QueryFlight>),
    }
    let role = {
        let mut flights = shared.flights.lock();
        match flights.get(&key) {
            Some(flight) => Role::Follower(Arc::clone(flight)),
            None => {
                let flight =
                    Arc::new(QueryFlight { reply: Mutex::new(None), published: Condvar::new() });
                flights.insert(key.clone(), Arc::clone(&flight));
                Role::Leader(FlightLease { flights: &shared.flights, key: Some(key), flight })
            }
        }
    };
    match role {
        Role::Leader(mut lease) => {
            let reply = respond(shared.engine.as_ref(), session, line);
            lease.settle(reply.clone());
            reply
        }
        Role::Follower(flight) => {
            let mut slot = flight.reply.lock();
            while slot.is_none() {
                flight.published.wait(&mut slot);
            }
            shared.engine.count_query_coalesced();
            slot.clone().expect("flight published")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use emst_datasets::{generate_2d, DatasetSpec};
    use emst_exec::Serial;

    fn engine() -> (ServeEngine<Serial, 2>, Arc<Vec<Point<2>>>) {
        let pts = Arc::new(generate_2d(&DatasetSpec::uniform(200, 7)));
        let engine = ServeEngine::new(Serial, ServeConfig::new(4, 2));
        engine.ingest(&pts);
        (engine, pts)
    }

    #[test]
    fn replies_are_deterministic_and_newline_terminated() {
        let (engine, pts) = engine();
        let mut session = NetSession::new(Arc::clone(&pts));
        let warm = respond(&engine, &mut session, "emst");
        let again = respond(&engine, &mut session, "emst");
        assert_eq!(warm, again, "warm replies must be byte-identical");
        assert!(warm.text.starts_with("ok emst cache=hit "));
        assert!(warm.text.ends_with('\n'));
        assert!(warm.text.contains(" check="));
        assert!(!warm.close);

        let knn = respond(&engine, &mut session, "knn 3 0.5 0.5");
        assert!(knn.text.starts_with("ok knn cache=hit k=3 "), "{}", knn.text);
        let sub = respond(&engine, &mut session, "subset 10..50");
        assert!(sub.text.starts_with("ok subset cache=hit m=40 "), "{}", sub.text);
        let hdb = respond(&engine, &mut session, "hdbscan 4 8");
        assert!(hdb.text.starts_with("ok hdbscan cache=hit clusters="), "{}", hdb.text);
    }

    #[test]
    fn malformed_lines_get_one_err_reply_mirroring_the_repl() {
        let (engine, pts) = engine();
        let mut session = NetSession::new(pts);
        for (line, expect) in [
            ("", "err empty command\n"),
            ("   ", "err empty command\n"),
            ("subset", "err subset needs <lo>..<hi>\n"),
            ("subset 9..3", "err subset 9..3 out of range for 200 points\n"),
            ("knn five 0 0", "err invalid <k> \"five\"\n"),
            ("knn 3 0.5", "err knn needs <k> and 2 coordinates\n"),
            ("hdbscan 0 8", "err hdbscan needs k_pts >= 1 and min_cluster_size >= 2\n"),
            ("metrics yaml", "err invalid metrics format \"yaml\" (expected json)\n"),
            ("load", "err load needs a path\n"),
            ("insert", "err insert needs coordinates in groups of 2\n"),
            ("insert 0.1 0.2 0.3", "err insert needs coordinates in groups of 2\n"),
            ("insert 0.1 oops", "err invalid coordinate \"oops\"\n"),
            ("delete", "err delete needs at least one <id>\n"),
            ("delete seven", "err invalid id \"seven\"\n"),
            (
                "delete 9999",
                "err invalid request: delete id 9999 out of range for cloud of 200 points\n",
            ),
        ] {
            let reply = respond(&engine, &mut session, line);
            assert_eq!(reply.text, expect, "line {line:?}");
            assert!(reply.is_err());
            assert!(!reply.close);
        }
        let unknown = respond(&engine, &mut session, "frobnicate");
        assert!(unknown.text.starts_with("err unknown command \"frobnicate\""));
    }

    #[test]
    fn ping_quit_and_body_framing() {
        let (engine, pts) = engine();
        let mut session = NetSession::new(pts);
        assert_eq!(respond(&engine, &mut session, "ping").text, "ok pong\n");
        let bye = respond(&engine, &mut session, "quit");
        assert_eq!(bye.text, "ok bye\n");
        assert!(bye.close);

        // `metrics` without observability still frames an exposition body.
        let reply = respond(&engine, &mut session, "metrics");
        let (header, body) = reply.text.split_once('\n').unwrap();
        let len: usize = header.strip_prefix("ok body ").unwrap().parse().unwrap();
        assert_eq!(body.len(), len, "framed length must match the body bytes");
        assert!(body.ends_with('\n'));
    }

    #[test]
    fn line_reader_handles_splits_junk_and_oversize() {
        let quiet = AtomicBool::new(false);
        // Split writes: one line delivered across reads, CRLF stripped.
        let mut src: &[u8] = b"pi";
        let mut buf = Vec::new();
        assert!(
            matches!(next_line(&mut src, &mut buf, &quiet).unwrap(), ReadEvent::Line(l) if l == "pi")
        );
        let mut src: &[u8] = b"ng\r\nquit\n";
        buf.clear();
        buf.extend_from_slice(b"pi");
        match next_line(&mut src, &mut buf, &quiet).unwrap() {
            ReadEvent::Line(l) => assert_eq!(l, "ping"),
            _ => panic!("expected a line"),
        }
        match next_line(&mut src, &mut buf, &quiet).unwrap() {
            ReadEvent::Line(l) => assert_eq!(l, "quit"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(next_line(&mut src, &mut buf, &quiet).unwrap(), ReadEvent::Eof));

        // Arbitrary junk (invalid UTF-8) still yields exactly one line.
        let mut src: &[u8] = b"\xff\xfe\x00garbage\n";
        buf.clear();
        assert!(matches!(next_line(&mut src, &mut buf, &quiet).unwrap(), ReadEvent::Line(_)));

        // Oversized unterminated line is rejected, not buffered forever.
        let big = vec![b'a'; MAX_LINE_BYTES + 2];
        let mut src: &[u8] = &big;
        buf.clear();
        assert!(matches!(next_line(&mut src, &mut buf, &quiet).unwrap(), ReadEvent::TooLong));
    }

    #[test]
    fn coalescing_key_canonicalizes_whitespace() {
        let tokens_a: Vec<&str> = "  knn   3  0.5 0.5 ".split_whitespace().collect();
        let tokens_b: Vec<&str> = "knn 3 0.5 0.5".split_whitespace().collect();
        assert_eq!(tokens_a.join(" "), tokens_b.join(" "));
        assert!(coalescable("emst") && coalescable("hdbscan"));
        assert!(!coalescable("load") && !coalescable("stats") && !coalescable("metrics"));
        assert!(!coalescable("insert") && !coalescable("delete"));
    }

    #[test]
    fn mutation_verbs_swap_the_session_and_reply_deterministically() {
        let (engine, pts) = engine();
        let mut session = NetSession::new(Arc::clone(&pts));
        let ins = respond(&engine, &mut session, "insert 0.25 0.75 0.6 0.4");
        assert!(ins.text.starts_with("ok insert key="), "{}", ins.text);
        assert!(ins.text.contains(" n=202 "), "{}", ins.text);
        assert!(ins.text.contains(" check="), "{}", ins.text);
        assert_eq!(session.points.len(), 202, "insert must swap the session cloud");

        // Replaying the same mutation from the same base cloud and the
        // same engine state must produce byte-identical replies (no
        // wall-clock fields). The first replay hits the warm child
        // (`dirty=0`), so compare two warm replays to each other and the
        // state-independent fields (key, tree digest) to the cold reply.
        let mut replay = NetSession::new(Arc::clone(&pts));
        let ins2 = respond(&engine, &mut replay, "insert 0.25 0.75 0.6 0.4");
        let mut replay_again = NetSession::new(Arc::clone(&pts));
        let ins3 = respond(&engine, &mut replay_again, "insert 0.25 0.75 0.6 0.4");
        assert_eq!(ins2, ins3, "same-state mutation replies must be byte-identical");
        let field = |text: &str, name: &str| {
            text.split_whitespace().find(|f| f.starts_with(name)).unwrap().to_string()
        };
        assert_eq!(field(&ins.text, "key="), field(&ins2.text, "key="));
        assert_eq!(field(&ins.text, "check="), field(&ins2.text, "check="));

        let del = respond(&engine, &mut session, "delete 0 201");
        assert!(del.text.starts_with("ok delete key="), "{}", del.text);
        assert!(del.text.contains(" n=200 "), "{}", del.text);
        assert_eq!(session.points.len(), 200);
        let del2 = respond(&engine, &mut replay, "delete 0 201");
        assert_eq!(field(&del.text, "key="), field(&del2.text, "key="));
        assert_eq!(field(&del.text, "check="), field(&del2.text, "check="));

        // A failed mutation must leave the session cloud untouched.
        let bad = respond(&engine, &mut session, "delete 5 5");
        assert_eq!(bad.text, "err invalid request: duplicate delete id 5\n");
        assert_eq!(session.points.len(), 200);
    }
}
