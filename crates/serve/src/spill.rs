//! Content digests and the durable eviction spill format.
//!
//! # Cache key
//!
//! A cloud is identified by [`CloudKey`]: the FNV-1a 64-bit digest of its
//! exact coordinate bits (dimension and count mixed in first) paired with
//! the shard count `K`. Two byte-identical clouds always collide onto the
//! same key — that is the cache hit — and any mutation of a single
//! coordinate bit changes the digest, so a stale entry can never answer
//! for a modified cloud. `K` is part of the key because the resident
//! artifacts (plan, per-shard BVHs, local MSTs) are a function of the
//! partition, not just the points.
//!
//! # Spill format (v2, binary, checksummed)
//!
//! An evicted cloud is persisted as one checksummed binary blob
//! (`emst_datasets::io::BlobWriter` framing, magic `EMSTSP02`):
//!
//! | section | payload |
//! |---------|---------|
//! | `HEAD`  | `D` u32, shards u64, salt u32, `n` u64, points digest u64 |
//! | `PNTS`  | `n · D` coordinate `f32` bit patterns, row-major |
//! | `ARTS`  | *(optional)* serialized [`emst_shard::ShardArtifacts`] blob |
//!
//! Every section carries its own FNV-1a checksum, so a flipped bit or a
//! short write is detected as such — never decoded into wrong points or
//! wrong artifacts. The `ARTS` section makes reload cheap: a verified read
//! of the artifact bytes replaces the deterministic-but-expensive rebuild.
//! Because the build *is* deterministic, artifacts are best-effort — a
//! missing or corrupt `ARTS` section degrades to a rebuild from the
//! (verified) points, reported via `SpillContents::artifacts` being
//! `None` with `SpillContents::artifact_corrupt` distinguishing "was
//! never written" from "was written and damaged".
//!
//! Writes go through a temp file + rename, so a crash (or injected
//! `ENOSPC` mid-write) never leaves a half-written file under the final
//! name. All fault injection (see [`crate::fault`]) is applied to the
//! in-memory byte image before it touches the filesystem, which keeps the
//! chaos tests hermetic and deterministic.

use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use emst_datasets::io::{BlobReader, BlobWriter, ByteReader, ByteWriter};
use emst_geometry::Point;

use crate::fault::{FaultKind, FaultPlan, FaultSite};

/// Magic bytes of the serve spill format, version 2 (binary, checksummed).
pub const SPILL_MAGIC: &[u8; 8] = b"EMSTSP02";

/// Identity of a resident (or spilled) cloud: content digest plus shard
/// count, plus a collision salt. See the module docs for the keying
/// scheme.
///
/// The digest is 64-bit, so distinct clouds *can* collide; the engine
/// never trusts digest equality alone (hits verify the stored points).
/// When verification finds two distinct clouds under one digest, the
/// newcomer is admitted under the next free `salt` so both stay servable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CloudKey {
    /// FNV-1a 64 digest of `(D, n, coordinate bits)`.
    pub digest: u64,
    /// Shard count the artifacts were built with.
    pub shards: usize,
    /// Collision-disambiguation salt; `0` for every key minted by
    /// digesting points, bumped only by the engine's verified-collision
    /// path.
    pub salt: u32,
}

impl CloudKey {
    /// The key `points` would normally be served under (salt `0`).
    pub(crate) fn minted(digest: u64, shards: usize) -> Self {
        Self { digest, shards, salt: 0 }
    }

    /// Test-only: a key with a chosen digest, bypassing [`digest_points`]
    /// — the seam collision tests use to alias two distinct clouds.
    #[doc(hidden)]
    pub fn forged(digest: u64, shards: usize) -> Self {
        Self::minted(digest, shards)
    }
}

impl std::fmt::Display for CloudKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}/K{}", self.digest, self.shards)?;
        if self.salt != 0 {
            write!(f, "/s{}", self.salt)?;
        }
        Ok(())
    }
}

/// FNV-1a 64 over the exact coordinate bits of `points`, with the
/// dimension and count mixed in first. Bit-exact: `-0.0` and `0.0` (and
/// different NaN payloads) digest differently, which errs on the side of a
/// rebuild rather than a false hit.
pub fn digest_points<const D: usize>(points: &[Point<D>]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(D as u64);
    mix(points.len() as u64);
    for p in points {
        for d in 0..D {
            mix(p[d].to_bits() as u64);
        }
    }
    h
}

/// Spill file of `key` inside `dir`. Salt-0 keys (the overwhelmingly
/// common case) keep the plain name; salted keys get a suffix so two
/// colliding clouds never clobber each other's spill.
pub(crate) fn spill_path(dir: &Path, key: CloudKey) -> PathBuf {
    if key.salt == 0 {
        dir.join(format!("cloud-{:016x}-k{}.spill", key.digest, key.shards))
    } else {
        dir.join(format!("cloud-{:016x}-k{}-s{}.spill", key.digest, key.shards, key.salt))
    }
}

/// A spill file read back and verified section by section.
#[derive(Debug)]
pub(crate) struct SpillContents<const D: usize> {
    /// The cloud, in original input order (checksum-verified; the engine
    /// additionally re-digests against the key).
    pub points: Vec<Point<D>>,
    /// Verified artifact blob bytes, when the spill carried them intact.
    pub artifacts: Option<Vec<u8>>,
    /// True when an `ARTS` section was present but failed verification —
    /// the reload must fall back to a rebuild, and the failure is worth
    /// counting separately from "artifacts were never spilled".
    pub artifact_corrupt: bool,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt serve spill file: {what}"))
}

/// Serializes a spill image: header + points + optional artifact bytes.
fn encode_spill<const D: usize>(
    key: CloudKey,
    points: &[Point<D>],
    artifacts: Option<&[u8]>,
) -> Vec<u8> {
    let mut head = ByteWriter::new();
    head.u32(D as u32);
    head.u64(key.shards as u64);
    head.u32(key.salt);
    head.u64(points.len() as u64);
    head.u64(key.digest);
    let mut pnts = ByteWriter::new();
    for p in points {
        for d in 0..D {
            pnts.f32(p[d]);
        }
    }
    let mut blob = BlobWriter::new(SPILL_MAGIC);
    blob.section(b"HEAD", &head.into_vec());
    blob.section(b"PNTS", &pnts.into_vec());
    if let Some(art) = artifacts {
        blob.section(b"ARTS", art);
    }
    blob.finish()
}

/// Decodes and verifies a spill image against the key it was looked up
/// under. Corrupt header or points are an `Err`; a corrupt artifact
/// section only degrades (points survive).
fn decode_spill<const D: usize>(bytes: &[u8], key: CloudKey) -> io::Result<SpillContents<D>> {
    let mut blob = BlobReader::open(bytes, SPILL_MAGIC)?;
    let head = blob.section(b"HEAD")?;
    let mut head = ByteReader::new(head);
    let dim = head.u32()?;
    let shards = head.u64()?;
    let salt = head.u32()?;
    let n = head.len_capped(bytes.len(), "spill point count")?;
    let digest = head.u64()?;
    head.done()?;
    if dim as usize != D {
        return Err(corrupt("dimension mismatch"));
    }
    if shards != key.shards as u64 || salt != key.salt || digest != key.digest {
        return Err(corrupt("key mismatch"));
    }
    let pnts = blob.section(b"PNTS")?;
    let mut pnts = ByteReader::new(pnts);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let mut coords = [0.0f32; D];
        for c in coords.iter_mut() {
            *c = pnts.f32()?;
        }
        points.push(Point::new(coords));
    }
    pnts.done()?;
    // The artifact section is best-effort: any failure past this line
    // degrades to a rebuild instead of failing the whole reload.
    let (artifacts, artifact_corrupt) = match blob.optional_section(b"ARTS") {
        // Bytes after a verified artifact section mean the frame is not
        // one we wrote: reject the file rather than guess at its layout.
        Ok(Some(_)) if blob.done().is_err() => {
            return Err(corrupt("trailing bytes after artifact section"))
        }
        Ok(Some(art)) => (Some(art.to_vec()), false),
        Ok(None) => (None, false),
        Err(_) => (None, true),
    };
    Ok(SpillContents { points, artifacts, artifact_corrupt })
}

/// Writes `key`'s spill file into `dir` (created if needed), optionally
/// carrying serialized artifacts, with fault injection applied to the
/// in-memory image. Injected `ShortWrite`/`BitFlip` faults *succeed* —
/// that is the point: only the read-side checksums can catch them.
pub(crate) fn write_spill<const D: usize>(
    dir: &Path,
    key: CloudKey,
    points: &[Point<D>],
    artifacts: Option<&[u8]>,
    fault: Option<&FaultPlan>,
) -> io::Result<()> {
    let mut image = encode_spill(key, points, artifacts);
    if let Some(plan) = fault {
        match plan.decide(FaultSite::Write) {
            None => {}
            Some(FaultKind::Eio) => return Err(io::Error::from_raw_os_error(5)),
            Some(FaultKind::Stall(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            Some(FaultKind::ShortWrite) => {
                image.truncate(plan.position(FaultSite::Write, image.len()));
            }
            Some(FaultKind::BitFlip) => {
                let pos = plan.position(FaultSite::Write, image.len());
                image[pos] ^= 1 << (pos % 8);
            }
            Some(FaultKind::Enospc) => {
                // Land a partial file under the *temp* name, then fail —
                // the rename never happens, so the final path stays clean.
                std::fs::create_dir_all(dir)?;
                let tmp = tmp_path(dir, key);
                let _ = std::fs::write(&tmp, &image[..image.len() / 2]);
                let _ = std::fs::remove_file(&tmp);
                return Err(io::Error::from_raw_os_error(28));
            }
        }
    }
    std::fs::create_dir_all(dir)?;
    let tmp = tmp_path(dir, key);
    let mut out = File::create(&tmp)?;
    if let Err(e) = out.write_all(&image).and_then(|()| out.sync_data()) {
        drop(out);
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    drop(out);
    std::fs::rename(&tmp, spill_path(dir, key))
}

fn tmp_path(dir: &Path, key: CloudKey) -> PathBuf {
    let final_name =
        spill_path(dir, key).file_name().expect("spill paths always have a file name").to_owned();
    let mut name = std::ffi::OsString::from(".tmp-");
    name.push(final_name);
    dir.join(name)
}

/// Reads and verifies `key`'s spilled cloud. Returns `None` when no spill
/// file exists; I/O failures are `Err` with the OS kind, and corruption
/// anywhere in the header or points is `Err(InvalidData)` — never wrong
/// points. Read-site faults are applied to the loaded image before
/// verification, so an injected bit flip is *detected*, not served.
pub(crate) fn read_spill<const D: usize>(
    dir: &Path,
    key: CloudKey,
    fault: Option<&FaultPlan>,
) -> io::Result<Option<SpillContents<D>>> {
    let path = spill_path(dir, key);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut image = Vec::new();
    file.read_to_end(&mut image)?;
    if let Some(plan) = fault {
        match plan.decide(FaultSite::Read) {
            None => {}
            Some(FaultKind::Eio) => return Err(io::Error::from_raw_os_error(5)),
            Some(FaultKind::Enospc) => return Err(io::Error::from_raw_os_error(28)),
            Some(FaultKind::Stall(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            Some(FaultKind::ShortWrite) => {
                image.truncate(plan.position(FaultSite::Read, image.len()));
            }
            Some(FaultKind::BitFlip) if !image.is_empty() => {
                let pos = plan.position(FaultSite::Read, image.len());
                image[pos] ^= 1 << (pos % 8);
            }
            Some(FaultKind::BitFlip) => {}
        }
    }
    decode_spill(&image, key).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("emst-serve-spill-{tag}-{}", std::process::id()))
    }

    fn sample_points() -> Vec<Point<3>> {
        (0..100).map(|i| Point::new([i as f32 * 0.1, -(i as f32), 1.0 / (i + 1) as f32])).collect()
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let pts = vec![Point::new([1.0f32, 2.0]), Point::new([3.0, 4.0])];
        let d = digest_points(&pts);
        assert_eq!(d, digest_points(&pts.clone()));
        let mut mutated = pts.clone();
        mutated[1] = Point::new([3.0, 4.0000005]);
        assert_ne!(d, digest_points(&mutated));
        // Order matters (the cache is keyed on the exact input sequence).
        let swapped = vec![pts[1], pts[0]];
        assert_ne!(d, digest_points(&swapped));
        // Signed zero is a different bit pattern.
        assert_ne!(
            digest_points(&[Point::new([0.0f32, 0.0])]),
            digest_points(&[Point::new([-0.0f32, 0.0])])
        );
    }

    #[test]
    fn spill_round_trips_exactly_with_and_without_artifacts() {
        let dir = temp_dir("roundtrip");
        let pts = sample_points();
        let key = CloudKey::minted(digest_points(&pts), 4);
        let art = vec![0xAAu8; 256];
        write_spill(&dir, key, &pts, Some(&art), None).unwrap();
        let back = read_spill::<3>(&dir, key, None).unwrap().unwrap();
        assert_eq!(back.points, pts);
        assert_eq!(digest_points(&back.points), key.digest);
        assert_eq!(back.artifacts.as_deref(), Some(art.as_slice()));
        assert!(!back.artifact_corrupt);
        // Without artifacts: clean reload, no corruption flag.
        write_spill(&dir, key, &pts, None, None).unwrap();
        let back = read_spill::<3>(&dir, key, None).unwrap().unwrap();
        assert_eq!(back.points, pts);
        assert!(back.artifacts.is_none() && !back.artifact_corrupt);
        let missing = CloudKey::minted(1, 4);
        assert!(read_spill::<3>(&dir, missing, None).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_never_decoded() {
        let dir = temp_dir("corrupt");
        let pts = sample_points();
        let key = CloudKey::minted(digest_points(&pts), 2);
        let art = vec![7u8; 64];
        write_spill(&dir, key, &pts, Some(&art), None).unwrap();
        let path = spill_path(&dir, key);
        let pristine = std::fs::read(&path).unwrap();
        // ARTS is the last section: its payload occupies the tail before
        // the final checksum. Flipping a byte there must only degrade.
        let arts_payload_pos = pristine.len() - 8 - art.len() / 2;
        let mut damaged = pristine.clone();
        damaged[arts_payload_pos] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        let back = read_spill::<3>(&dir, key, None).unwrap().unwrap();
        assert_eq!(back.points, pts, "points survive artifact corruption");
        assert!(back.artifacts.is_none() && back.artifact_corrupt);
        // Any flip in the header or points sections is a typed error.
        for pos in [9usize, 30, pristine.len() / 2] {
            let mut damaged = pristine.clone();
            damaged[pos] ^= 0x01;
            std::fs::write(&path, &damaged).unwrap();
            let e = read_spill::<3>(&dir, key, None).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "flip at {pos}");
        }
        // Truncation at every prefix length is an error, never a panic.
        for cut in 0..pristine.len().min(64) {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(read_spill::<3>(&dir, key, None).is_err(), "cut at {cut}");
        }
        // A truncation that only clips the trailing ARTS section degrades
        // (points intact, artifacts dropped) instead of failing the reload.
        std::fs::write(&path, &pristine[..pristine.len() - 13]).unwrap();
        let back = read_spill::<3>(&dir, key, None).unwrap().unwrap();
        assert_eq!(back.points, pts);
        assert!(back.artifacts.is_none() && back.artifact_corrupt);
        // Trailing garbage after the artifact section is frame corruption.
        let mut padded = pristine.clone();
        padded.extend_from_slice(b"extra");
        std::fs::write(&path, &padded).unwrap();
        let e = read_spill::<3>(&dir, key, None).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        // A spill written under one key never decodes under another.
        std::fs::write(&path, &pristine).unwrap();
        let foreign = CloudKey { digest: key.digest ^ 1, ..key };
        std::fs::write(spill_path(&dir, foreign), &pristine).unwrap();
        assert!(read_spill::<3>(&dir, foreign, None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_faults_error_or_corrupt_detectably() {
        use crate::fault::{FaultKind, FaultPlan, FaultSite};
        let dir = temp_dir("faults");
        let pts = sample_points();
        let key = CloudKey::minted(digest_points(&pts), 2);
        // Write-side EIO: the error surfaces and no file lands.
        let plan = FaultPlan::new(1).with_rule(FaultSite::Write, FaultKind::Eio, 1.0);
        let e = write_spill(&dir, key, &pts, None, Some(&plan)).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(5));
        assert!(!spill_path(&dir, key).exists());
        // Write-side ENOSPC: errors, and the final path is never created.
        let plan = FaultPlan::new(1).with_rule(FaultSite::Write, FaultKind::Enospc, 1.0);
        let e = write_spill(&dir, key, &pts, None, Some(&plan)).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28));
        assert!(!spill_path(&dir, key).exists());
        // Silent write corruption: the write *succeeds*; the read catches it.
        for kind in [FaultKind::ShortWrite, FaultKind::BitFlip] {
            let plan = FaultPlan::new(9).with_rule(FaultSite::Write, kind, 1.0);
            write_spill(&dir, key, &pts, None, Some(&plan)).unwrap();
            match read_spill::<3>(&dir, key, None) {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{kind:?}"),
                Ok(back) => {
                    // A flip can land in the (best-effort) artifact area
                    // only when artifacts exist; without them it must fail.
                    panic!("{kind:?} went undetected: {} points", back.unwrap().points.len())
                }
            }
        }
        // Read-side bit flip over a pristine file: detected on read.
        write_spill(&dir, key, &pts, None, None).unwrap();
        let plan = FaultPlan::new(3).with_rule(FaultSite::Read, FaultKind::BitFlip, 1.0);
        let e = read_spill::<3>(&dir, key, Some(&plan)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        // Stall: slow but clean.
        let plan = FaultPlan::new(3).with_rule(FaultSite::Read, FaultKind::Stall(1), 1.0);
        let back = read_spill::<3>(&dir, key, Some(&plan)).unwrap().unwrap();
        assert_eq!(back.points, pts);
        std::fs::remove_dir_all(&dir).ok();
    }
}
