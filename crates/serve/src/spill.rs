//! Content digests and the eviction spill format.
//!
//! # Cache key
//!
//! A cloud is identified by [`CloudKey`]: the FNV-1a 64-bit digest of its
//! exact coordinate bits (dimension and count mixed in first) paired with
//! the shard count `K`. Two byte-identical clouds always collide onto the
//! same key — that is the cache hit — and any mutation of a single
//! coordinate bit changes the digest, so a stale entry can never answer
//! for a modified cloud. `K` is part of the key because the resident
//! artifacts (plan, per-shard BVHs, local MSTs) are a function of the
//! partition, not just the points.
//!
//! # Spill format
//!
//! An evicted cloud is persisted in the sharded solver's existing
//! spill-file format (`emst_shard::stream`): one `index,coord0,...` CSV
//! line per point, coordinates printed with `{:?}` so every `f32`
//! round-trips exactly. Artifacts are *not* serialized — the BVH build is
//! a deterministic pure function of the points (see
//! [`emst_bvh::Bvh::resident_bytes`]), so reloading the points and
//! rebuilding reproduces bit-identical artifacts, which the reload path
//! re-verifies by digest.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use emst_geometry::Point;

/// Identity of a resident (or spilled) cloud: content digest plus shard
/// count, plus a collision salt. See the module docs for the keying
/// scheme.
///
/// The digest is 64-bit, so distinct clouds *can* collide; the engine
/// never trusts digest equality alone (hits verify the stored points).
/// When verification finds two distinct clouds under one digest, the
/// newcomer is admitted under the next free `salt` so both stay servable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CloudKey {
    /// FNV-1a 64 digest of `(D, n, coordinate bits)`.
    pub digest: u64,
    /// Shard count the artifacts were built with.
    pub shards: usize,
    /// Collision-disambiguation salt; `0` for every key minted by
    /// digesting points, bumped only by the engine's verified-collision
    /// path.
    pub salt: u32,
}

impl CloudKey {
    /// The key `points` would normally be served under (salt `0`).
    pub(crate) fn minted(digest: u64, shards: usize) -> Self {
        Self { digest, shards, salt: 0 }
    }

    /// Test-only: a key with a chosen digest, bypassing [`digest_points`]
    /// — the seam collision tests use to alias two distinct clouds.
    #[doc(hidden)]
    pub fn forged(digest: u64, shards: usize) -> Self {
        Self::minted(digest, shards)
    }
}

impl std::fmt::Display for CloudKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}/K{}", self.digest, self.shards)?;
        if self.salt != 0 {
            write!(f, "/s{}", self.salt)?;
        }
        Ok(())
    }
}

/// FNV-1a 64 over the exact coordinate bits of `points`, with the
/// dimension and count mixed in first. Bit-exact: `-0.0` and `0.0` (and
/// different NaN payloads) digest differently, which errs on the side of a
/// rebuild rather than a false hit.
pub fn digest_points<const D: usize>(points: &[Point<D>]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(D as u64);
    mix(points.len() as u64);
    for p in points {
        for d in 0..D {
            mix(p[d].to_bits() as u64);
        }
    }
    h
}

/// Spill file of `key` inside `dir`. Salt-0 keys (the overwhelmingly
/// common case) keep the historical name; salted keys get a suffix so two
/// colliding clouds never clobber each other's spill.
pub(crate) fn spill_path(dir: &Path, key: CloudKey) -> PathBuf {
    if key.salt == 0 {
        dir.join(format!("cloud-{:016x}-k{}.csv", key.digest, key.shards))
    } else {
        dir.join(format!("cloud-{:016x}-k{}-s{}.csv", key.digest, key.shards, key.salt))
    }
}

/// Writes `points` to `key`'s spill file in `dir` (created if needed).
pub(crate) fn write_spill<const D: usize>(
    dir: &Path,
    key: CloudKey,
    points: &[Point<D>],
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut out = BufWriter::new(File::create(spill_path(dir, key))?);
    for (i, p) in points.iter().enumerate() {
        write!(out, "{i}")?;
        for d in 0..D {
            // `{:?}` prints the shortest f32 representation that
            // round-trips, as in `emst_datasets::io::save_csv`.
            write!(out, ",{:?}", p[d])?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads a spilled cloud back into input order. Returns `None` when no
/// spill file exists for `key`; corrupt files are an `Err`.
pub(crate) fn read_spill<const D: usize>(
    dir: &Path,
    key: CloudKey,
) -> io::Result<Option<Vec<Point<D>>>> {
    let path = spill_path(dir, key);
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "corrupt serve spill file");
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut rows: Vec<(u32, Point<D>)> = vec![];
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let mut fields = line.trim().split(',');
        let idx: u32 = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
        let mut coords = [0.0f32; D];
        for c in coords.iter_mut() {
            *c = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
        }
        rows.push((idx, Point::new(coords)));
    }
    let n = rows.len();
    let mut points = vec![Point::origin(); n];
    let mut seen = vec![false; n];
    for (idx, p) in rows {
        let i = idx as usize;
        if i >= n || seen[i] {
            return Err(bad());
        }
        seen[i] = true;
        points[i] = p;
    }
    Ok(Some(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let pts = vec![Point::new([1.0f32, 2.0]), Point::new([3.0, 4.0])];
        let d = digest_points(&pts);
        assert_eq!(d, digest_points(&pts.clone()));
        let mut mutated = pts.clone();
        mutated[1] = Point::new([3.0, 4.0000005]);
        assert_ne!(d, digest_points(&mutated));
        // Order matters (the cache is keyed on the exact input sequence).
        let swapped = vec![pts[1], pts[0]];
        assert_ne!(d, digest_points(&swapped));
        // Signed zero is a different bit pattern.
        assert_ne!(
            digest_points(&[Point::new([0.0f32, 0.0])]),
            digest_points(&[Point::new([-0.0f32, 0.0])])
        );
    }

    #[test]
    fn spill_round_trips_exactly() {
        let dir =
            std::env::temp_dir().join(format!("emst-serve-spill-test-{}", std::process::id()));
        let pts: Vec<Point<3>> = (0..100)
            .map(|i| Point::new([i as f32 * 0.1, -(i as f32), 1.0 / (i + 1) as f32]))
            .collect();
        let key = CloudKey::minted(digest_points(&pts), 4);
        write_spill(&dir, key, &pts).unwrap();
        let back = read_spill::<3>(&dir, key).unwrap().unwrap();
        assert_eq!(back, pts);
        assert_eq!(digest_points(&back), key.digest);
        let missing = CloudKey::minted(1, 4);
        assert!(read_spill::<3>(&dir, missing).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
