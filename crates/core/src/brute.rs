//! Brute-force MST oracle.
//!
//! Kruskal's algorithm over the explicitly materialized distance graph —
//! `O(n² log n)` time, `O(n²)` memory. This is the ground truth every other
//! implementation in the workspace is tested against (on small inputs).

use emst_geometry::{Metric, Point};

use crate::dsu::UnionFind;
use crate::edge::Edge;

/// Computes the exact MST of the complete metric graph by Kruskal's
/// algorithm. Edges are ordered by the `(weight, min, max)` total order, so
/// the result is the unique MST selected by the paper's tie-breaking rule
/// (in original-index space).
pub fn brute_force_mst<M: Metric, const D: usize>(points: &[Point<D>], metric: &M) -> Vec<Edge> {
    let n = points.len();
    if n < 2 {
        return vec![];
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            let e = points[u].squared_distance(&points[v]);
            let w = metric.squared_distance(u as u32, v as u32, e);
            edges.push(Edge::new(u as u32, v as u32, w));
        }
    }
    edges.sort_by_key(Edge::key);
    let mut dsu = UnionFind::new(n);
    let mut mst = Vec::with_capacity(n - 1);
    for e in edges {
        if dsu.union(e.u as usize, e.v as usize) {
            mst.push(e);
            if mst.len() == n - 1 {
                break;
            }
        }
    }
    mst
}

/// Euclidean convenience wrapper around [`brute_force_mst`].
pub fn brute_force_emst<const D: usize>(points: &[Point<D>]) -> Vec<Edge> {
    brute_force_mst(points, &emst_geometry::Euclidean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{total_weight, verify_spanning_tree};
    use emst_geometry::{brute_force_core_distances_sq, MutualReachability};

    #[test]
    fn trivial_inputs_yield_no_edges() {
        assert!(brute_force_emst::<2>(&[]).is_empty());
        assert!(brute_force_emst(&[Point::new([1.0f32, 2.0])]).is_empty());
    }

    #[test]
    fn two_points_yield_their_edge() {
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let mst = brute_force_emst(&pts);
        assert_eq!(mst, vec![Edge::new(0, 1, 25.0)]);
        assert_eq!(total_weight(&mst), 5.0);
    }

    #[test]
    fn collinear_points_form_a_path() {
        let pts: Vec<Point<2>> = (0..5).map(|i| Point::new([i as f32, 0.0])).collect();
        let mst = brute_force_emst(&pts);
        verify_spanning_tree(5, &mst).unwrap();
        assert_eq!(total_weight(&mst), 4.0);
        for e in &mst {
            assert_eq!(e.weight_sq, 1.0);
        }
    }

    #[test]
    fn square_with_ties_uses_index_tie_break() {
        // Unit square: 4 edges of weight 1, 2 diagonals of weight sqrt(2).
        // MST = any 3 sides; the (w, min, max) order picks (0,1), (0,2), (1,3).
        let pts = vec![
            Point::new([0.0f32, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([0.0, 1.0]),
            Point::new([1.0, 1.0]),
        ];
        let mst = brute_force_emst(&pts);
        verify_spanning_tree(4, &mst).unwrap();
        let ends: Vec<(u32, u32)> = mst.iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(ends, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn duplicate_points_connect_at_zero_cost() {
        let pts = vec![Point::new([1.0f32, 1.0]), Point::new([1.0, 1.0]), Point::new([2.0, 1.0])];
        let mst = brute_force_emst(&pts);
        verify_spanning_tree(3, &mst).unwrap();
        assert_eq!(total_weight(&mst), 1.0);
    }

    #[test]
    fn mutual_reachability_mst_differs_from_euclidean() {
        // A tight pair far from a third point: with k=3 the core distances
        // inflate the tight pair's edge.
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([0.1, 0.0]), Point::new([5.0, 0.0])];
        let core = brute_force_core_distances_sq(&pts, 3);
        let m = MutualReachability::new(&core);
        let mst_e = brute_force_emst(&pts);
        let mst_m = brute_force_mst(&pts, &m);
        verify_spanning_tree(3, &mst_m).unwrap();
        assert!(total_weight(&mst_m) > total_weight(&mst_e));
    }
}
