//! The paper's primary contribution: a **single-tree Borůvka algorithm** for
//! the Euclidean minimum spanning tree, designed for massively parallel
//! (GPU-style) execution.
//!
//! Reference: A. Prokopenko, P. Sao, D. Lebrun-Grandié, *"A single-tree
//! algorithm to compute the Euclidean minimum spanning tree on GPUs"*,
//! ICPP 2022 (arXiv:2207.00514).
//!
//! The algorithm (paper Fig. 3) iterates Borůvka rounds, each consisting of
//! four bulk-synchronous kernels over a linear BVH:
//!
//! 1. [`labels::reduce_labels`] — propagate per-point component labels from
//!    the leaves into the internal tree nodes (bottom-up, atomic-flag
//!    synchronized). Internal nodes whose leaves span several components get
//!    an *invalid* label. This enables **Optimization 1: subtree skipping** —
//!    nearest-neighbour traversals bypass subtrees entirely contained in the
//!    query's own component;
//! 2. `compute_upper_bounds` — for every pair of points adjacent on the
//!    Z-order curve but in different components, their distance is a valid
//!    upper bound on both components' shortest outgoing edge
//!    (**Optimization 2**), seeding the traversal cutoff radius;
//! 3. `find_component_outgoing_edges` — one constrained nearest-neighbour
//!    traversal per point (paper Algorithm 2), reduced to a per-component
//!    shortest outgoing edge under the total edge order
//!    `(weight, min endpoint, max endpoint)` (the paper's §2 tie-breaking,
//!    without which Borůvka may cycle);
//! 4. `merge_components` — follow the chains of chosen edges to their
//!    terminal mutually-pointing pair and relabel every point
//!    (embarrassingly parallel, §3 "Merging components together").
//!
//! Two implementations of the edge selection step are provided (see
//! [`EdgeSelection`]): a mutex-per-component reference and the GPU-faithful
//! lock-free packed-atomic scheme. They produce identical results and are
//! compared in the ablation bench.
//!
//! The algorithm is generic over the [`emst_geometry::Metric`]; with
//! [`emst_geometry::MutualReachability`] it computes the HDBSCAN* MST of
//! §4.5 of the paper.

pub mod boruvka;
pub mod brute;
pub mod dsu;
pub mod edge;
pub mod labels;

pub use boruvka::{BoruvkaScratch, EdgeSelection, EmstConfig, EmstResult, SingleTreeBoruvka};
pub use dsu::UnionFind;
pub use edge::{verify_spanning_tree, Edge};
// The traversal toggle lives in `emst_bvh` but is configured through
// [`EmstConfig`]; re-exported so config-building callers need one import.
pub use emst_bvh::Traversal;
