//! Disjoint-set union (union-find).
//!
//! Used by the Kruskal-based reference and baselines (GeoFilterKruskal's
//! filtering step, the brute-force oracle, spanning-tree verification). The
//! single-tree Borůvka algorithm itself tracks components through the
//! `labels` array instead, as in the paper.

/// Union-find with union by size and path halving.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], num_sets: n }
    }

    /// Resets to `n` singleton sets, reusing the allocations — for callers
    /// (the sharded merge's scratch) that run many solves over equal-sized
    /// vertex sets.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        self.num_sets = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when constructed over zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    #[inline]
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Read-only find (no compression); useful under shared borrows.
    #[inline]
    pub fn find_immutable(&self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false when already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.num_sets -= 1;
        true
    }

    /// True when `a` and `b` share a set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements in `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_then_unions() {
        let mut d = UnionFind::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert_eq!(d.num_sets(), 3);
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
        assert!(d.union(1, 3));
        assert!(d.same(0, 2));
        assert_eq!(d.set_size(3), 4);
        assert_eq!(d.num_sets(), 2);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut d = UnionFind::new(10);
        d.union(0, 5);
        d.union(5, 7);
        d.union(2, 3);
        for i in 0..10 {
            assert_eq!(d.find_immutable(i), d.clone().find(i));
        }
    }

    #[test]
    fn chain_unions_compress() {
        let mut d = UnionFind::new(1000);
        for i in 0..999 {
            assert!(d.union(i, i + 1));
        }
        assert_eq!(d.num_sets(), 1);
        assert_eq!(d.set_size(0), 1000);
        assert!(d.same(0, 999));
    }

    proptest! {
        #[test]
        fn union_find_matches_naive_labels(ops in prop::collection::vec((0usize..50, 0usize..50), 0..200)) {
            let mut d = UnionFind::new(50);
            let mut naive: Vec<usize> = (0..50).collect();
            for (a, b) in ops {
                let expected_new = naive[a] != naive[b];
                prop_assert_eq!(d.union(a, b), expected_new);
                if expected_new {
                    let (la, lb) = (naive[a], naive[b]);
                    for l in naive.iter_mut() {
                        if *l == lb {
                            *l = la;
                        }
                    }
                }
            }
            for a in 0..50 {
                for b in 0..50 {
                    prop_assert_eq!(d.same(a, b), naive[a] == naive[b]);
                }
            }
            let distinct: std::collections::HashSet<usize> = naive.iter().copied().collect();
            prop_assert_eq!(d.num_sets(), distinct.len());
        }
    }
}
