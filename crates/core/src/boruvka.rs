//! The single-tree Borůvka EMST driver (paper Fig. 3 and Algorithm 2).

use std::sync::atomic::AtomicU32;

use parking_lot::Mutex;

use emst_bvh::{Bvh, MortonResolution, Traversal, TraversalStats};
use emst_exec::atomic::pack_dist_payload;
use emst_exec::counters::CounterSnapshot;
use emst_exec::{AtomicF32Min, AtomicU64Min, Counters, ExecSpace, PhaseTimings, SyncUnsafeSlice};
use emst_geometry::{nonneg_f32_to_ordered_bits, Euclidean, Metric, Point, Scalar};

use crate::edge::{total_weight, Edge};
use crate::labels::{reduce_labels, INVALID_LABEL};

/// How the per-component shortest outgoing edge is reduced across threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeSelection {
    /// One `parking_lot::Mutex<Candidate>` per component, compared under the
    /// full `(weight, min, max)` edge order. Readable reference
    /// implementation; locks are fine on CPUs but would serialize a GPU.
    Locked,
    /// The GPU-faithful lock-free scheme: a packed 64-bit atomic-min per
    /// component holding `(distance bits ‖ min endpoint)`, followed by a
    /// deterministic source-resolution pass. This mirrors what a device
    /// implementation does with `atomicMin` on 64-bit words.
    Atomic64,
}

/// Configuration of the single-tree Borůvka run. The two boolean toggles
/// correspond exactly to the paper's Optimization 1 and Optimization 2 and
/// exist for the ablation study; production use keeps both on.
#[derive(Clone, Copy, Debug)]
pub struct EmstConfig {
    /// Edge-selection strategy (see [`EdgeSelection`]).
    pub edge_selection: EdgeSelection,
    /// Optimization 1: skip subtrees fully contained in the query's
    /// component (requires the per-iteration `reduceLabels` pass).
    pub subtree_skipping: bool,
    /// Optimization 2: initialize traversal cutoff radii from Z-curve
    /// neighbour pairs.
    pub upper_bounds: bool,
    /// Z-curve resolution of the BVH construction. `Bits128` is the paper's
    /// §4.1 remedy for extremely dense datasets (GeoLife) whose hot spots
    /// are under-resolved by 64-bit codes.
    pub morton_resolution: MortonResolution,
    /// Which nearest-neighbour walker the `find_edges` kernel uses: the
    /// default stackless rope traversal over the 4-wide SoA tree, or the
    /// seed per-query-stack walk kept for the ablation study. Both return
    /// bit-identical hits, so the MST is the same either way.
    pub traversal: Traversal,
}

impl Default for EmstConfig {
    fn default() -> Self {
        Self {
            edge_selection: EdgeSelection::Atomic64,
            subtree_skipping: true,
            upper_bounds: true,
            morton_resolution: MortonResolution::Bits64,
            traversal: Traversal::Stackless,
        }
    }
}

/// Output of an EMST computation.
#[derive(Clone, Debug)]
pub struct EmstResult {
    /// The `n − 1` tree edges (original point indices, `u < v`).
    pub edges: Vec<Edge>,
    /// Sum of (non-squared) edge weights, accumulated in `f64`.
    pub total_weight: f64,
    /// Number of Borůvka iterations executed.
    pub iterations: u32,
    /// Wall-clock phase timings: `"tree"`, `"mst"` and `mst.*` sub-phases.
    pub timings: PhaseTimings,
    /// Algorithmic work of the whole run (tree construction + iterations).
    pub work: CounterSnapshot,
    /// Work attributable to tree construction only.
    pub work_tree: CounterSnapshot,
    /// Kernel launches/items during construction (instrumented backends).
    pub launches_tree: (u64, u64),
    /// Kernel launches/items during the Borůvka loop.
    pub launches_mst: (u64, u64),
}

impl EmstResult {
    fn empty() -> Self {
        Self {
            edges: vec![],
            total_weight: 0.0,
            iterations: 0,
            timings: PhaseTimings::new(),
            work: CounterSnapshot::default(),
            work_tree: CounterSnapshot::default(),
            launches_tree: (0, 0),
            launches_mst: (0, 0),
        }
    }

    /// Work attributable to the Borůvka loop only.
    pub fn work_mst(&self) -> CounterSnapshot {
        self.work.since(&self.work_tree)
    }
}

/// Per-component candidate edge in Morton-rank space, `a < b`.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    dist_sq: Scalar,
    a: u32,
    b: u32,
}

impl Candidate {
    const NONE: Candidate = Candidate { dist_sq: Scalar::INFINITY, a: u32::MAX, b: u32::MAX };

    #[inline]
    fn key(&self) -> (u32, u32, u32) {
        (nonneg_f32_to_ordered_bits(self.dist_sq), self.a, self.b)
    }

    #[inline]
    fn is_none(&self) -> bool {
        self.a == u32::MAX
    }
}

/// The single-tree Borůvka EMST solver.
///
/// ```
/// use emst_core::{EmstConfig, SingleTreeBoruvka};
/// use emst_exec::Serial;
/// use emst_geometry::Point;
///
/// let points = vec![
///     Point::new([0.0f32, 0.0]),
///     Point::new([1.0, 0.0]),
///     Point::new([5.0, 0.0]),
/// ];
/// let result = SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default());
/// assert_eq!(result.edges.len(), 2);
/// assert_eq!(result.total_weight, 5.0);
/// ```
pub struct SingleTreeBoruvka<'a, const D: usize> {
    points: &'a [Point<D>],
}

impl<'a, const D: usize> SingleTreeBoruvka<'a, D> {
    /// Creates a solver over `points` (borrowed; nothing is copied until
    /// [`Self::run`]).
    pub fn new(points: &'a [Point<D>]) -> Self {
        Self { points }
    }

    /// Computes the Euclidean MST.
    pub fn run<S: ExecSpace>(&self, space: &S, config: &EmstConfig) -> EmstResult {
        self.run_with_metric(space, config, &Euclidean)
    }

    /// [`Self::run`] drawing working memory from a caller-held
    /// [`BoruvkaScratch`] — the repeated-solve form (per-shard, per-query).
    pub fn run_scratch<S: ExecSpace>(
        &self,
        space: &S,
        config: &EmstConfig,
        scratch: &mut BoruvkaScratch,
    ) -> EmstResult {
        self.run_with_metric_scratch(space, config, &Euclidean, scratch)
    }

    /// Computes the MST under an arbitrary [`Metric`] (indexed by original
    /// point indices) — e.g. mutual reachability for HDBSCAN* (paper §4.5).
    pub fn run_with_metric<S: ExecSpace, M: Metric>(
        &self,
        space: &S,
        config: &EmstConfig,
        metric: &M,
    ) -> EmstResult {
        self.run_with_metric_scratch(space, config, metric, &mut BoruvkaScratch::new())
    }

    /// [`Self::run_with_metric`] with a caller-held [`BoruvkaScratch`].
    pub fn run_with_metric_scratch<S: ExecSpace, M: Metric>(
        &self,
        space: &S,
        config: &EmstConfig,
        metric: &M,
        scratch: &mut BoruvkaScratch,
    ) -> EmstResult {
        let n = self.points.len();
        if n < 2 {
            return EmstResult::empty();
        }
        let mut timings = PhaseTimings::new();
        let counters = Counters::new();

        let launches0 = kernel_snapshot(space);
        let bvh = timings.time("tree", || {
            Bvh::build_with_resolution(space, self.points, config.morton_resolution)
        });
        // Structured-memory traffic of construction: codes in/out of the
        // sort, point gather, hierarchy writes.
        let point_bytes = std::mem::size_of::<Point<D>>() as u64;
        let aabb_bytes = 2 * point_bytes;
        let logn = (usize::BITS - n.leading_zeros()) as u64;
        counters.add_bytes(n as u64 * (12 * logn + 2 * point_bytes + 2 * aabb_bytes + 16));
        let work_tree = counters.snapshot();
        let launches1 = kernel_snapshot(space);

        let mst_start = std::time::Instant::now();
        let (edges, iterations) =
            run_boruvka_scratch(space, &bvh, metric, config, &counters, &mut timings, scratch);
        timings.record("mst", mst_start.elapsed().as_secs_f64());
        let launches2 = kernel_snapshot(space);

        debug_assert_eq!(edges.len(), n - 1);
        EmstResult {
            total_weight: total_weight(&edges),
            edges,
            iterations,
            timings,
            work: counters.snapshot(),
            work_tree,
            launches_tree: delta(launches0, launches1),
            launches_mst: delta(launches1, launches2),
        }
    }
}

fn kernel_snapshot<S: ExecSpace>(space: &S) -> (u64, u64) {
    space.kernel_stats().map_or((0, 0), |s| (s.launches(), s.items()))
}

fn delta(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (b.0 - a.0, b.1 - a.1)
}

/// Reusable allocation pool for [`run_boruvka_scratch`].
///
/// One Borůvka run needs a dozen `O(n)`/`O(nodes)` working arrays (labels,
/// node labels, climb flags, upper bounds, per-component reduction slots…).
/// Allocating them per call is invisible for one monolithic solve but adds
/// up when the solver is invoked in a loop — the sharded per-shard solves,
/// HDBSCAN*'s EMST pass after core distances, and any serving layer that
/// answers repeated queries. Callers keep one scratch alive and every run
/// only grows it; nothing is freed between runs.
#[derive(Default)]
pub struct BoruvkaScratch {
    labels: Vec<u32>,
    node_labels: Vec<u32>,
    flags: Vec<AtomicU32>,
    upper: Vec<AtomicF32Min>,
    locked_best: Vec<Mutex<Candidate>>,
    cand_ngb: Vec<u32>,
    cand_dist: Vec<Scalar>,
    comp_key: Vec<AtomicU64Min>,
    comp_pair: Vec<AtomicU64Min>,
    comp_edge: Vec<Candidate>,
    next_arr: Vec<u32>,
    emit_mark: Vec<usize>,
    emit_pos: Vec<usize>,
}

impl BoruvkaScratch {
    /// An empty pool; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows every array the configured run will touch and (re)initializes
    /// the ones whose starting state matters. Stale contents from earlier
    /// runs are harmless everywhere else: each iteration rewrites its slots
    /// before reading them.
    fn prepare(&mut self, n: usize, num_nodes: usize, num_internal: usize, config: &EmstConfig) {
        self.labels.clear();
        self.labels.extend(0..n as u32);
        if config.subtree_skipping {
            self.node_labels.resize(num_nodes, INVALID_LABEL);
            if self.flags.len() < num_internal {
                self.flags.resize_with(num_internal, || AtomicU32::new(0));
            }
        }
        if config.upper_bounds && self.upper.len() < n {
            self.upper.resize_with(n, AtomicF32Min::new_inf);
        }
        match config.edge_selection {
            EdgeSelection::Locked => {
                if self.locked_best.len() < n {
                    self.locked_best.resize_with(n, || Mutex::new(Candidate::NONE));
                }
                // Defensive: a prior panicked run could have left winners.
                for slot in &self.locked_best[..n] {
                    *slot.lock() = Candidate::NONE;
                }
            }
            EdgeSelection::Atomic64 => {
                self.cand_ngb.resize(n, u32::MAX);
                self.cand_dist.resize(n, Scalar::INFINITY);
                if self.comp_key.len() < n {
                    self.comp_key.resize_with(n, AtomicU64Min::new_max);
                }
                if self.comp_pair.len() < n {
                    self.comp_pair.resize_with(n, AtomicU64Min::new_max);
                }
            }
        }
        self.comp_edge.resize(n, Candidate::NONE);
        self.next_arr.resize(n, u32::MAX);
        self.emit_mark.resize(n, 0);
        self.emit_pos.resize(n, 0);
    }
}

/// The Borůvka loop over a pre-built BVH. Exposed for callers that reuse the
/// tree (HDBSCAN* builds it once for core distances and the MST). Allocates
/// a fresh [`BoruvkaScratch`]; loop callers should hold one and use
/// [`run_boruvka_scratch`].
pub fn run_boruvka<S: ExecSpace, M: Metric, const D: usize>(
    space: &S,
    bvh: &Bvh<D>,
    metric: &M,
    config: &EmstConfig,
    counters: &Counters,
    timings: &mut PhaseTimings,
) -> (Vec<Edge>, u32) {
    run_boruvka_scratch(space, bvh, metric, config, counters, timings, &mut BoruvkaScratch::new())
}

/// [`run_boruvka`] drawing its working arrays from a caller-held
/// [`BoruvkaScratch`], so repeated solves (per-shard, per-query) stop paying
/// per-call allocation.
#[allow(clippy::too_many_arguments)]
pub fn run_boruvka_scratch<S: ExecSpace, M: Metric, const D: usize>(
    space: &S,
    bvh: &Bvh<D>,
    metric: &M,
    config: &EmstConfig,
    counters: &Counters,
    timings: &mut PhaseTimings,
    scratch: &mut BoruvkaScratch,
) -> (Vec<Edge>, u32) {
    let n = bvh.num_leaves();
    debug_assert!(n >= 2);
    let point_bytes = std::mem::size_of::<Point<D>>() as u64;

    scratch.prepare(n, bvh.num_nodes(), bvh.num_internal(), config);
    let BoruvkaScratch {
        // Component labels per Morton rank; every point starts as its own
        // component, labelled by its own rank (paper Fig. 3 initialization).
        labels,
        node_labels,
        flags,
        upper,
        locked_best,
        cand_ngb,
        cand_dist,
        comp_key,
        comp_pair,
        comp_edge,
        next_arr,
        emit_mark,
        emit_pos,
    } = scratch;

    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut num_components = n;
    let mut iterations = 0u32;

    while num_components > 1 {
        iterations += 1;
        counters.add_iterations(1);
        assert!(
            iterations as usize <= usize::BITS as usize * 2,
            "Borůvka failed to converge — tie-breaking invariant violated"
        );

        // Phase 1: propagate labels into internal nodes (Optimization 1).
        if config.subtree_skipping {
            timings.time("mst.reduce_labels", || {
                reduce_labels(space, bvh, labels, node_labels, &flags[..bvh.num_internal()]);
            });
            counters.add_bytes(bvh.num_nodes() as u64 * 8);
        }

        // Phase 2: per-component upper bounds from Z-curve neighbours
        // (Optimization 2).
        if config.upper_bounds {
            timings.time("mst.upper_bounds", || {
                space.parallel_for(n, |i| upper[i].store(Scalar::INFINITY));
                let labels = &*labels;
                space.parallel_for(n - 1, |i| {
                    let (li, lj) = (labels[i], labels[i + 1]);
                    if li != lj {
                        let e =
                            bvh.leaf_point(i as u32).squared_distance(bvh.leaf_point(i as u32 + 1));
                        let u = bvh.point_index(i as u32);
                        let v = bvh.point_index(i as u32 + 1);
                        let w = metric.squared_distance(u, v, e);
                        upper[li as usize].fetch_min(w);
                        upper[lj as usize].fetch_min(w);
                    }
                });
            });
            counters.add_distance_computations(n as u64 - 1);
            counters.add_bytes(n as u64 * (8 + point_bytes));
        }

        // Phase 3: the constrained nearest-neighbour kernel (Algorithm 2)
        // plus the per-component reduction of the shortest outgoing edge.
        timings.time("mst.find_edges", || {
            let labels = &*labels;
            let node_labels = &*node_labels;
            let cand_ngb_s = SyncUnsafeSlice::new(cand_ngb);
            let cand_dist_s = SyncUnsafeSlice::new(cand_dist);
            let subtree_skipping = config.subtree_skipping;
            let use_bounds = config.upper_bounds;
            let selection = config.edge_selection;
            let traversal = config.traversal;
            let locked_best = &*locked_best;

            let stats = space.parallel_reduce(
                n,
                TraversalStats::default(),
                |i| {
                    let comp = labels[i];
                    let radius =
                        if use_bounds { upper[comp as usize].load() } else { Scalar::INFINITY };
                    let mut st = TraversalStats::default();
                    let u_orig = bvh.point_index(i as u32);
                    // Metric-specific early exit: if even the query's own
                    // lower bound (e.g. its core distance) exceeds the
                    // component bound, no candidate can win.
                    let hit = if metric.squared_bound(u_orig, 0.0) > radius {
                        None
                    } else {
                        bvh.nearest(
                            traversal,
                            bvh.leaf_point(i as u32),
                            radius,
                            |node| subtree_skipping && node_labels[node as usize] == comp,
                            |rank, e| {
                                if labels[rank as usize] == comp {
                                    return None;
                                }
                                let v_orig = bvh.point_index(rank);
                                Some(metric.squared_distance(u_orig, v_orig, e))
                            },
                            &mut st,
                        )
                    };
                    match selection {
                        EdgeSelection::Atomic64 => {
                            // SAFETY: slot `i` is written only by this thread
                            // and read only after the kernel completes.
                            unsafe {
                                match hit {
                                    Some(h) => {
                                        cand_ngb_s.write(i, h.rank);
                                        cand_dist_s.write(i, h.dist_sq);
                                    }
                                    None => cand_ngb_s.write(i, u32::MAX),
                                }
                            }
                        }
                        EdgeSelection::Locked => {
                            if let Some(h) = hit {
                                let cand = Candidate {
                                    dist_sq: h.dist_sq,
                                    a: (i as u32).min(h.rank),
                                    b: (i as u32).max(h.rank),
                                };
                                let mut best = locked_best[comp as usize].lock();
                                if cand.key() < best.key() {
                                    *best = cand;
                                }
                            }
                        }
                    }
                    st
                },
                TraversalStats::merged,
            );
            counters.add_queries(n as u64);
            counters.add_node_visits(stats.nodes);
            counters.add_rope_hops(stats.rope_hops);
            counters.add_leaf_visits(stats.leaves);
            counters.add_distance_computations(stats.distances);
            counters.add_subtrees_skipped(stats.skipped);
        });

        // Normalize the winning edge of every component into `comp_edge`.
        timings.time("mst.select", || {
            let labels = &*labels;
            let comp_edge_s = SyncUnsafeSlice::new(comp_edge);
            match config.edge_selection {
                EdgeSelection::Locked => {
                    space.parallel_for(n, |i| {
                        if labels[i] == i as u32 {
                            let best = *locked_best[i].lock();
                            // SAFETY: one writer per slot.
                            unsafe { comp_edge_s.write(i, best) };
                        }
                    });
                    space.parallel_for(n, |i| *locked_best[i].lock() = Candidate::NONE);
                }
                EdgeSelection::Atomic64 => {
                    let cand_ngb = &*cand_ngb;
                    let cand_dist = &*cand_dist;
                    // Pass A: per-component minimum of (distance, min rank).
                    space.parallel_for(n, |i| comp_key[i].store(u64::MAX));
                    space.parallel_for(n, |i| {
                        let ngb = cand_ngb[i];
                        if ngb == u32::MAX {
                            return;
                        }
                        let key = pack_dist_payload(cand_dist[i], (i as u32).min(ngb));
                        comp_key[labels[i] as usize].fetch_min(key);
                    });
                    // Pass B: deterministic winner among key ties — the
                    // smallest (source, target) pair.
                    space.parallel_for(n, |i| comp_pair[i].store(u64::MAX));
                    space.parallel_for(n, |i| {
                        let ngb = cand_ngb[i];
                        if ngb == u32::MAX {
                            return;
                        }
                        let comp = labels[i] as usize;
                        let key = pack_dist_payload(cand_dist[i], (i as u32).min(ngb));
                        if key == comp_key[comp].load() {
                            comp_pair[comp].fetch_min(((i as u64) << 32) | ngb as u64);
                        }
                    });
                    space.parallel_for(n, |i| {
                        if labels[i] != i as u32 {
                            return;
                        }
                        let pair = comp_pair[i].load();
                        let cand = if pair == u64::MAX {
                            Candidate::NONE
                        } else {
                            let src = (pair >> 32) as u32;
                            let dst = pair as u32;
                            Candidate {
                                dist_sq: cand_dist[src as usize],
                                a: src.min(dst),
                                b: src.max(dst),
                            }
                        };
                        // SAFETY: one writer per slot.
                        unsafe { comp_edge_s.write(i, cand) };
                    });
                }
            }
        });

        // Phase 4: merge components along the found edges (§3 of the paper).
        timings.time("mst.merge", || {
            let labels_ref = &*labels;
            let comp_edge = &*comp_edge;
            // next[c]: the component this component's shortest edge leads to.
            {
                let next_s = SyncUnsafeSlice::new(next_arr);
                space.parallel_for(n, |i| {
                    let v = if labels_ref[i] == i as u32 {
                        let e = comp_edge[i];
                        debug_assert!(!e.is_none(), "component {i} found no outgoing edge");
                        let tgt = if labels_ref[e.a as usize] == i as u32 { e.b } else { e.a };
                        labels_ref[tgt as usize]
                    } else {
                        u32::MAX
                    };
                    // SAFETY: one writer per slot.
                    unsafe { next_s.write(i, v) };
                });
            }
            let next_arr = &*next_arr;

            // Decide which components emit their edge: every component emits
            // unless it is the larger-rank member of a mutual pair (whose
            // partner chose the identical undirected edge — see §2
            // tie-breaking: the pair's keys are equal, hence the edges are
            // the same).
            let emits = |i: usize| -> bool {
                if labels_ref[i] != i as u32 {
                    return false;
                }
                let b = next_arr[i] as usize;
                let mutual = next_arr[b] == i as u32;
                !(mutual && (b as u32) < i as u32)
            };
            {
                let mark_s = SyncUnsafeSlice::new(emit_mark);
                space.parallel_for(n, |i| {
                    // SAFETY: one writer per slot.
                    unsafe { mark_s.write(i, emits(i) as usize) };
                });
            }
            emit_pos.copy_from_slice(emit_mark);
            let added = space.parallel_scan_exclusive(emit_pos);
            let start = edges.len();
            edges.resize(start + added, Edge { u: 0, v: 0, weight_sq: 0.0 });
            {
                let out = SyncUnsafeSlice::new(&mut edges[start..]);
                let emit_pos = &*emit_pos;
                let emit_mark = &*emit_mark;
                space.parallel_for(n, |i| {
                    if emit_mark[i] == 0 {
                        return;
                    }
                    let e = comp_edge[i];
                    let u = bvh.point_index(e.a);
                    let v = bvh.point_index(e.b);
                    // SAFETY: scan positions are unique per emitting slot.
                    unsafe { out.write(emit_pos[i], Edge::new(u, v, e.dist_sq)) };
                });
            }

            // Relabel every point to the smaller representative of its
            // chain's terminal pair.
            {
                let labels_s = SyncUnsafeSlice::new(labels);
                space.parallel_for(n, |i| {
                    // SAFETY: each thread reads and writes only slot `i`;
                    // chain-following goes through `next_arr`, never labels.
                    let mut c = unsafe { *labels_s.get(i) };
                    loop {
                        let nx = next_arr[c as usize];
                        if next_arr[nx as usize] == c {
                            // SAFETY: one writer per slot.
                            unsafe { labels_s.write(i, c.min(nx)) };
                            break;
                        }
                        c = nx;
                    }
                });
            }
            counters.add_bytes(n as u64 * 24);
        });

        let labels = &*labels;
        num_components =
            space.parallel_reduce(n, 0usize, |i| (labels[i] == i as u32) as usize, |a, b| a + b);
    }

    (edges, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{brute_force_emst, brute_force_mst};
    use crate::edge::{verify_spanning_tree, weight_multiset};
    use emst_exec::{GpuSim, Serial, Threads};
    use emst_geometry::{brute_force_core_distances_sq, MutualReachability};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    fn random_points_3d(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new([
                    rng.random_range(-1.0f32..1.0),
                    rng.random_range(-1.0f32..1.0),
                    rng.random_range(-1.0f32..1.0),
                ])
            })
            .collect()
    }

    fn check_against_brute_force_2d(pts: &[Point<2>], config: &EmstConfig) {
        let result = SingleTreeBoruvka::new(pts).run(&Serial, config);
        verify_spanning_tree(pts.len(), &result.edges).unwrap();
        let brute = brute_force_emst(pts);
        assert_eq!(
            weight_multiset(&result.edges),
            weight_multiset(&brute),
            "weight multiset mismatch for n={} cfg={config:?}",
            pts.len()
        );
    }

    #[test]
    fn trivial_sizes() {
        let cfg = EmstConfig::default();
        assert!(SingleTreeBoruvka::<2>::new(&[]).run(&Serial, &cfg).edges.is_empty());
        let one = [Point::new([1.0f32, 1.0])];
        assert!(SingleTreeBoruvka::new(&one).run(&Serial, &cfg).edges.is_empty());
        let two = [Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let r = SingleTreeBoruvka::new(&two).run(&Serial, &cfg);
        assert_eq!(r.edges, vec![Edge::new(0, 1, 25.0)]);
        assert_eq!(r.total_weight, 5.0);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn matches_brute_force_on_random_2d() {
        for seed in 0..5 {
            let pts = random_points_2d(200, seed);
            check_against_brute_force_2d(&pts, &EmstConfig::default());
        }
    }

    #[test]
    fn matches_brute_force_on_random_3d() {
        for seed in 0..3 {
            let pts = random_points_3d(150, seed + 100);
            let result = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
            verify_spanning_tree(pts.len(), &result.edges).unwrap();
            let brute = brute_force_emst(&pts);
            assert_eq!(weight_multiset(&result.edges), weight_multiset(&brute));
        }
    }

    #[test]
    fn grid_with_massive_ties_matches_brute_force() {
        // Integer grid: every nearest-neighbour distance ties. This is the
        // adversarial case for Borůvka convergence (§2 tie-breaking).
        let pts: Vec<Point<2>> =
            (0..12).flat_map(|x| (0..12).map(move |y| Point::new([x as f32, y as f32]))).collect();
        for selection in [EdgeSelection::Locked, EdgeSelection::Atomic64] {
            let cfg = EmstConfig { edge_selection: selection, ..EmstConfig::default() };
            check_against_brute_force_2d(&pts, &cfg);
        }
    }

    #[test]
    fn duplicate_points_converge() {
        let mut pts = random_points_2d(50, 5);
        let dup = pts[7];
        pts.extend(std::iter::repeat_n(dup, 20));
        for selection in [EdgeSelection::Locked, EdgeSelection::Atomic64] {
            let cfg = EmstConfig { edge_selection: selection, ..EmstConfig::default() };
            check_against_brute_force_2d(&pts, &cfg);
        }
    }

    #[test]
    fn collinear_points_match() {
        let pts: Vec<Point<2>> = (0..64).map(|i| Point::new([i as f32, 0.0])).collect();
        check_against_brute_force_2d(&pts, &EmstConfig::default());
    }

    #[test]
    fn both_selection_strategies_agree_exactly() {
        let pts = random_points_2d(500, 17);
        let locked = SingleTreeBoruvka::new(&pts).run(
            &Threads,
            &EmstConfig { edge_selection: EdgeSelection::Locked, ..Default::default() },
        );
        let atomic = SingleTreeBoruvka::new(&pts).run(
            &Threads,
            &EmstConfig { edge_selection: EdgeSelection::Atomic64, ..Default::default() },
        );
        let mut a = locked.edges.clone();
        let mut b = atomic.edges.clone();
        a.sort_by_key(Edge::key);
        b.sort_by_key(Edge::key);
        assert_eq!(a, b);
    }

    #[test]
    fn kernels_are_execution_order_independent() {
        // GPUs run work items in arbitrary order; ChaosSerial shuffles the
        // iteration order deterministically to flush out accidental order
        // dependence in the kernels (non-commutative atomics, hidden
        // read-after-write hazards between work items).
        use emst_exec::ChaosSerial;
        let pts = random_points_2d(600, 77);
        let reference = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
        for seed in 0..6 {
            for selection in [EdgeSelection::Locked, EdgeSelection::Atomic64] {
                let cfg = EmstConfig { edge_selection: selection, ..Default::default() };
                let chaotic = SingleTreeBoruvka::new(&pts).run(&ChaosSerial::new(seed), &cfg);
                assert_eq!(
                    weight_multiset(&chaotic.edges),
                    weight_multiset(&reference.edges),
                    "seed {seed} {selection:?}"
                );
                assert_eq!(chaotic.total_weight, reference.total_weight);
            }
        }
    }

    #[test]
    fn all_backends_agree() {
        let pts = random_points_2d(400, 23);
        let cfg = EmstConfig::default();
        let s = SingleTreeBoruvka::new(&pts).run(&Serial, &cfg);
        let t = SingleTreeBoruvka::new(&pts).run(&Threads, &cfg);
        let g = SingleTreeBoruvka::new(&pts).run(&GpuSim::new(), &cfg);
        assert_eq!(weight_multiset(&s.edges), weight_multiset(&t.edges));
        assert_eq!(weight_multiset(&s.edges), weight_multiset(&g.edges));
        assert_eq!(s.total_weight, t.total_weight);
    }

    #[test]
    fn ablation_configs_remain_correct() {
        let pts = random_points_2d(150, 31);
        for skipping in [false, true] {
            for bounds in [false, true] {
                let cfg = EmstConfig {
                    subtree_skipping: skipping,
                    upper_bounds: bounds,
                    ..Default::default()
                };
                check_against_brute_force_2d(&pts, &cfg);
            }
        }
    }

    #[test]
    fn optimizations_reduce_work() {
        let pts = random_points_2d(2000, 41);
        let run = |skipping, bounds| {
            SingleTreeBoruvka::new(&pts)
                .run(
                    &Serial,
                    &EmstConfig {
                        subtree_skipping: skipping,
                        upper_bounds: bounds,
                        ..Default::default()
                    },
                )
                .work
                .distance_computations
        };
        let naive = run(false, false);
        let full = run(true, true);
        assert!(
            full < naive / 2,
            "optimizations should cut distance computations: naive={naive} full={full}"
        );
    }

    #[test]
    fn mutual_reachability_matches_brute_force() {
        for k in [1usize, 2, 4, 8] {
            let pts = random_points_2d(120, 57 + k as u64);
            let core = brute_force_core_distances_sq(&pts, k);
            let metric = MutualReachability::new(&core);
            let result = SingleTreeBoruvka::new(&pts).run_with_metric(
                &Serial,
                &EmstConfig::default(),
                &metric,
            );
            verify_spanning_tree(pts.len(), &result.edges).unwrap();
            let brute = brute_force_mst(&pts, &metric);
            assert_eq!(weight_multiset(&result.edges), weight_multiset(&brute), "k_pts={k}");
        }
    }

    #[test]
    fn mutual_reachability_k1_equals_euclidean() {
        let pts = random_points_2d(80, 71);
        let core = brute_force_core_distances_sq(&pts, 1);
        let metric = MutualReachability::new(&core);
        let mrd =
            SingleTreeBoruvka::new(&pts).run_with_metric(&Serial, &EmstConfig::default(), &metric);
        let euc = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
        assert_eq!(weight_multiset(&mrd.edges), weight_multiset(&euc.edges));
    }

    #[test]
    fn scratch_reuse_across_sizes_and_configs_stays_correct() {
        // One pool through shrinking/growing inputs, both selections and
        // both walkers — stale contents must never leak into a result.
        let mut scratch = BoruvkaScratch::new();
        for (n, seed) in [(300usize, 1u64), (40, 2), (180, 3)] {
            let pts = random_points_2d(n, seed);
            let brute = weight_multiset(&brute_force_emst(&pts));
            for selection in [EdgeSelection::Locked, EdgeSelection::Atomic64] {
                for traversal in [Traversal::Stack, Traversal::Stackless] {
                    let cfg =
                        EmstConfig { edge_selection: selection, traversal, ..Default::default() };
                    let r = SingleTreeBoruvka::new(&pts).run_scratch(&Threads, &cfg, &mut scratch);
                    verify_spanning_tree(n, &r.edges).unwrap();
                    assert_eq!(
                        weight_multiset(&r.edges),
                        brute,
                        "n={n} {selection:?} {traversal:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn both_traversals_agree_under_mutual_reachability() {
        let pts = random_points_2d(150, 91);
        let core = brute_force_core_distances_sq(&pts, 4);
        let metric = MutualReachability::new(&core);
        let mut edges: Vec<Vec<Edge>> = vec![];
        for traversal in [Traversal::Stack, Traversal::Stackless] {
            let cfg = EmstConfig { traversal, ..Default::default() };
            let mut e = SingleTreeBoruvka::new(&pts).run_with_metric(&Serial, &cfg, &metric).edges;
            e.sort_by_key(Edge::key);
            edges.push(e);
        }
        assert_eq!(edges[0], edges[1]);
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let pts = random_points_2d(4096, 83);
        let r = SingleTreeBoruvka::new(&pts).run(&Threads, &EmstConfig::default());
        // Theoretical bound is ceil(log2 n) = 12; chains usually do better.
        assert!(r.iterations <= 12, "iterations = {}", r.iterations);
        assert!(r.iterations >= 3);
    }

    #[test]
    fn timings_and_work_are_populated() {
        let pts = random_points_2d(1000, 97);
        let gpu = GpuSim::new();
        let r = SingleTreeBoruvka::new(&pts).run(&gpu, &EmstConfig::default());
        assert!(r.timings.get("tree") > 0.0);
        assert!(r.timings.get("mst") > 0.0);
        assert!(r.work.node_visits > 0);
        assert!(r.work.queries >= 1000);
        assert!(r.launches_tree.0 > 0);
        assert!(r.launches_mst.0 > r.launches_tree.0);
        assert!(r.work_mst().node_visits == r.work.node_visits);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn emst_equals_brute_force_weight_multiset(
            n in 2usize..120,
            seed in 0u64..10_000,
            selection in prop::sample::select(vec![EdgeSelection::Locked, EdgeSelection::Atomic64]),
        ) {
            let pts = random_points_2d(n, seed);
            let cfg = EmstConfig { edge_selection: selection, ..Default::default() };
            let result = SingleTreeBoruvka::new(&pts).run(&Threads, &cfg);
            prop_assert!(verify_spanning_tree(n, &result.edges).is_ok());
            let brute = brute_force_emst(&pts);
            prop_assert_eq!(weight_multiset(&result.edges), weight_multiset(&brute));
        }

        #[test]
        fn emst_on_clustered_integer_points(
            n in 2usize..80, seed in 0u64..1000
        ) {
            // Integer coordinates in a tiny range: heavy duplicate and tie
            // pressure.
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([
                    rng.random_range(0i32..6) as f32,
                    rng.random_range(0i32..6) as f32,
                ]))
                .collect();
            let result = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
            prop_assert!(verify_spanning_tree(n, &result.edges).is_ok());
            let brute = brute_force_emst(&pts);
            prop_assert_eq!(weight_multiset(&result.edges), weight_multiset(&brute));
        }

        #[test]
        fn mrd_emst_equals_brute_force(
            n in 2usize..60, seed in 0u64..500, k in 1usize..6
        ) {
            let pts = random_points_2d(n, seed);
            let core = brute_force_core_distances_sq(&pts, k);
            let metric = MutualReachability::new(&core);
            let result = SingleTreeBoruvka::new(&pts)
                .run_with_metric(&Serial, &EmstConfig::default(), &metric);
            prop_assert!(verify_spanning_tree(n, &result.edges).is_ok());
            let brute = brute_force_mst(&pts, &metric);
            prop_assert_eq!(weight_multiset(&result.edges), weight_multiset(&brute));
        }
    }
}
