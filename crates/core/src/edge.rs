//! MST edges and spanning-tree verification.

use emst_geometry::Scalar;

use crate::dsu::UnionFind;

/// An undirected MST edge between two points, identified by their original
/// (input-order) indices, with `u < v`.
///
/// The weight is stored **squared** because that is what every algorithm in
/// the workspace computes internally (square roots are taken only for
/// reporting); keeping the squared value allows tests to compare edges across
/// implementations for exact bit equality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Smaller endpoint (original point index).
    pub u: u32,
    /// Larger endpoint (original point index).
    pub v: u32,
    /// Squared metric weight.
    pub weight_sq: Scalar,
}

impl Edge {
    /// Creates an edge, canonicalizing the endpoint order.
    #[inline]
    pub fn new(a: u32, b: u32, weight_sq: Scalar) -> Self {
        debug_assert_ne!(a, b, "self-loops cannot appear in an MST");
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        Self { u, v, weight_sq }
    }

    /// The (non-squared) metric weight.
    #[inline]
    pub fn weight(&self) -> Scalar {
        self.weight_sq.sqrt()
    }

    /// The total-order key used for tie-breaking: `(weight, min, max)`.
    /// See §2 of the paper.
    #[inline]
    pub fn key(&self) -> (u32, u32, u32) {
        (emst_geometry::nonneg_f32_to_ordered_bits(self.weight_sq), self.u, self.v)
    }
}

/// Sums edge weights (square roots of the stored squared weights) in `f64`.
pub fn total_weight(edges: &[Edge]) -> f64 {
    edges.iter().map(|e| (e.weight_sq as f64).sqrt()).sum()
}

/// Checks that `edges` forms a spanning tree over `n` vertices: exactly
/// `n − 1` edges, no cycles, one connected component.
pub fn verify_spanning_tree(n: usize, edges: &[Edge]) -> Result<(), String> {
    if n == 0 {
        return if edges.is_empty() { Ok(()) } else { Err("edges over 0 vertices".into()) };
    }
    if edges.len() != n - 1 {
        return Err(format!("expected {} edges, got {}", n - 1, edges.len()));
    }
    let mut dsu = UnionFind::new(n);
    for e in edges {
        if e.u as usize >= n || e.v as usize >= n {
            return Err(format!("edge ({}, {}) out of range", e.u, e.v));
        }
        if !dsu.union(e.u as usize, e.v as usize) {
            return Err(format!("edge ({}, {}) closes a cycle", e.u, e.v));
        }
    }
    if dsu.num_sets() != 1 {
        return Err(format!("{} components remain", dsu.num_sets()));
    }
    Ok(())
}

/// The sorted multiset of squared weights — the canonical comparison between
/// two MSTs of the same graph (all minimum spanning trees share it even when
/// tie-breaking selects different edges).
pub fn weight_multiset(edges: &[Edge]) -> Vec<u32> {
    let mut bits: Vec<u32> =
        edges.iter().map(|e| emst_geometry::nonneg_f32_to_ordered_bits(e.weight_sq)).collect();
    bits.sort_unstable();
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canonicalizes_order() {
        let e = Edge::new(5, 2, 1.0);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(Edge::new(2, 5, 1.0), e);
    }

    #[test]
    fn weight_is_sqrt_of_stored() {
        assert_eq!(Edge::new(0, 1, 25.0).weight(), 5.0);
    }

    #[test]
    fn keys_order_by_weight_then_endpoints() {
        let a = Edge::new(0, 9, 1.0);
        let b = Edge::new(1, 2, 1.0);
        let c = Edge::new(0, 3, 2.0);
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }

    #[test]
    fn verify_accepts_a_path() {
        let edges: Vec<Edge> = (0..4).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        verify_spanning_tree(5, &edges).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_count_cycles_and_disconnection() {
        assert!(verify_spanning_tree(3, &[Edge::new(0, 1, 1.0)]).is_err());
        // cycle: 0-1, 1-2, 0-2 over 4 vertices
        let cyc = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(0, 2, 1.0)];
        assert!(verify_spanning_tree(4, &cyc).is_err());
        // right count, but disconnected (duplicate edge closes a cycle)
        let dis = vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0), Edge::new(0, 1, 2.0)];
        assert!(verify_spanning_tree(4, &dis).is_err());
    }

    #[test]
    fn verify_handles_trivial_sizes() {
        verify_spanning_tree(0, &[]).unwrap();
        verify_spanning_tree(1, &[]).unwrap();
        assert!(verify_spanning_tree(2, &[]).is_err());
    }

    #[test]
    fn multiset_is_order_insensitive() {
        let a = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)];
        let b = vec![Edge::new(4, 5, 1.0), Edge::new(0, 9, 2.0)];
        assert_eq!(weight_multiset(&a), weight_multiset(&b));
    }
}
