//! `reduceLabels`: bottom-up propagation of component labels into the tree.
//!
//! Paper §3, Optimization 1 (and Fig. 4): before the nearest-neighbour
//! kernel of each Borůvka iteration, every internal BVH node is labeled with
//! its subtree's component when all leaves below it belong to one component,
//! or with [`INVALID_LABEL`] otherwise. Traversals then skip subtrees whose
//! label equals the query's component — the paper's key pruning device for
//! late iterations, when components are large.
//!
//! The kernel reuses the Apetrei construction pattern: one climbing thread
//! per leaf, an atomic flag per internal node; the first arriver dies, the
//! second (which can see both children's labels thanks to the `AcqRel`
//! flag) combines them and continues upward.
//!
//! Label placement and the wide traversal: `node_labels` stays indexed by
//! *binary* node id even though the default walker runs on the 4-wide
//! collapse — every wide lane carries the binary id of the subtree it
//! collapsed from, so both walkers share this one array and one skip
//! closure. Two properties of the reduction are load-bearing for that
//! sharing: labels are **downward-closed** (a uniformly-labelled subtree
//! has uniformly-labelled children, so consulting only the collapse's
//! even-depth nodes skips exactly the same leaves), and a leaf node's
//! label equals `labels[rank]` (so the stackless walker may leave leaf
//! lanes to the callback's same-component check). See
//! [`emst_bvh::Bvh::nearest_stackless`].

use std::sync::atomic::{AtomicU32, Ordering};

use emst_bvh::Bvh;
use emst_exec::{ExecSpace, SyncUnsafeSlice};

/// Label of internal nodes whose leaves span multiple components.
pub const INVALID_LABEL: u32 = u32::MAX;

/// Propagates `labels` (indexed by Morton rank) to all `2n − 1` nodes of the
/// tree. `node_labels` must have `bvh.num_nodes()` entries; `flags` must
/// have `bvh.num_internal()` entries (they are reset here).
pub fn reduce_labels<S: ExecSpace, const D: usize>(
    space: &S,
    bvh: &Bvh<D>,
    labels: &[u32],
    node_labels: &mut [u32],
    flags: &[AtomicU32],
) {
    let n = bvh.num_leaves();
    debug_assert_eq!(labels.len(), n);
    debug_assert_eq!(node_labels.len(), bvh.num_nodes());
    debug_assert_eq!(flags.len(), bvh.num_internal());

    space.parallel_for(flags.len(), |i| flags[i].store(0, Ordering::Relaxed));

    let out = SyncUnsafeSlice::new(node_labels);
    space.parallel_for(n, |i| {
        let leaf = bvh.leaf_id(i as u32);
        // SAFETY: each leaf slot has exactly one writer (this thread), and
        // readers synchronize through the parent flag below.
        unsafe { out.write(leaf as usize, labels[i]) };
        let mut node = bvh.parent(leaf);
        while node != emst_bvh::INVALID_NODE {
            // First arriver dies; its leaf/subtree label write above is
            // released to the survivor by the AcqRel exchange.
            if flags[node as usize].fetch_add(1, Ordering::AcqRel) == 0 {
                break;
            }
            // SAFETY: both children were written before their climbing
            // threads incremented this node's flag.
            let left = unsafe { *out.get(bvh.left_child(node) as usize) };
            let right = unsafe { *out.get(bvh.right_child(node) as usize) };
            let combined = if left == right { left } else { INVALID_LABEL };
            // SAFETY: only the surviving thread writes this node.
            unsafe { out.write(node as usize, combined) };
            node = bvh.parent(node);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use emst_geometry::Point;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect()
    }

    /// Reference: recursively recompute what every internal label must be.
    fn check_reduced<const D: usize>(bvh: &Bvh<D>, labels: &[u32], node_labels: &[u32]) {
        fn subtree_label<const D: usize>(bvh: &Bvh<D>, labels: &[u32], node: u32) -> Option<u32> {
            if bvh.is_leaf(node) {
                return Some(labels[bvh.leaf_rank(node) as usize]);
            }
            let l = subtree_label(bvh, labels, bvh.left_child(node));
            let r = subtree_label(bvh, labels, bvh.right_child(node));
            match (l, r) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            }
        }
        for node in 0..bvh.num_nodes() as u32 {
            let expect = subtree_label(bvh, labels, node).unwrap_or(INVALID_LABEL);
            assert_eq!(node_labels[node as usize], expect, "node {node}");
        }
    }

    fn run_case(n: usize, seed: u64, num_components: u32) {
        let pts = random_points(n, seed);
        let bvh = Bvh::build(&Serial, &pts);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..num_components)).collect();
        let mut node_labels = vec![0u32; bvh.num_nodes()];
        let flags: Vec<AtomicU32> = (0..bvh.num_internal()).map(|_| AtomicU32::new(7)).collect(); // stale flags
        reduce_labels(&Threads, &bvh, &labels, &mut node_labels, &flags);
        check_reduced(&bvh, &labels, &node_labels);
    }

    #[test]
    fn all_same_component_labels_whole_tree() {
        let pts = random_points(100, 1);
        let bvh = Bvh::build(&Serial, &pts);
        let labels = vec![3u32; 100];
        let mut node_labels = vec![0u32; bvh.num_nodes()];
        let flags: Vec<AtomicU32> = (0..bvh.num_internal()).map(|_| AtomicU32::new(0)).collect();
        reduce_labels(&Serial, &bvh, &labels, &mut node_labels, &flags);
        assert!(node_labels.iter().all(|&l| l == 3));
    }

    #[test]
    fn distinct_labels_invalidate_all_internal_nodes() {
        let pts = random_points(64, 2);
        let bvh = Bvh::build(&Serial, &pts);
        let labels: Vec<u32> = (0..64).collect();
        let mut node_labels = vec![0u32; bvh.num_nodes()];
        let flags: Vec<AtomicU32> = (0..bvh.num_internal()).map(|_| AtomicU32::new(0)).collect();
        reduce_labels(&Serial, &bvh, &labels, &mut node_labels, &flags);
        for node in 0..bvh.num_internal() as u32 {
            assert_eq!(node_labels[node as usize], INVALID_LABEL);
        }
        check_reduced(&bvh, &labels, &node_labels);
    }

    #[test]
    fn single_leaf_tree_reduces() {
        let bvh = Bvh::build(&Serial, &[Point::new([0.5f32, 0.5])]);
        let labels = vec![9u32];
        let mut node_labels = vec![0u32; 1];
        reduce_labels(&Serial, &bvh, &labels, &mut node_labels, &[]);
        assert_eq!(node_labels, vec![9]);
    }

    #[test]
    fn mixed_components_match_reference_serial_and_parallel() {
        run_case(500, 42, 7);
        run_case(1000, 43, 2);
        run_case(333, 44, 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn reduced_labels_match_reference(
            n in 1usize..150, seed in 0u64..300, comps in 1u32..10
        ) {
            run_case(n, seed, comps);
        }
    }
}
