//! Well-separated pair decomposition EMST — the **MemoGFK** baseline.
//!
//! This crate reimplements the comparison algorithm the paper benchmarks as
//! *MemoGFK* (Wang, Yu, Gu & Shun, SIGMOD 2021): the fastest published
//! sequential and multithreaded CPU EMST at the time. The pipeline is
//!
//! 1. **tree** — a spatial decomposition tree with singleton leaves
//!    (we use median splits; Callahan–Kosaraju's fair split changes the
//!    worst-case pair count, not correctness);
//! 2. **wspd** — the well-separated pair decomposition with separation
//!    `s = 2`: every pair of points is covered by exactly one node pair
//!    whose box distance is at least the larger box diameter. With `s ≥ 2`
//!    every MST edge is the *bichromatic closest pair* (BCP) of some
//!    decomposition pair — the structural theorem the algorithm rests on;
//! 3. **mst** — GeoFilterKruskal: Kruskal over the pairs in distance order,
//!    with BCPs computed **lazily in filtered batches** so most pairs are
//!    discarded (their endpoints already connected) before their BCP is ever
//!    evaluated;
//! 4. **mark** — the bookkeeping phase (component uniformity marking).
//!
//! The four phases match the paper's Fig. 8a breakdown (T_tree, T_wspd,
//! T_mst, T_mark). Both sequential and rayon-parallel variants are provided,
//! mirroring MemoGFK(S) and MemoGFK(MT) in Figs. 5–6.

// Several loops index multiple parallel arrays by position; clippy's
// enumerate suggestion does not apply cleanly there.
#![allow(clippy::needless_range_loop)]

pub mod bcp;
pub mod decomposition;
pub mod gfk;

pub use decomposition::{Wspd, WspdPair};
pub use gfk::{wspd_emst, wspd_emst_with_metric, WspdEmstResult};
