//! GeoFilterKruskal: Kruskal over the WSPD pairs with lazily computed,
//! batch-filtered bichromatic closest pairs (Wang et al. 2021).
//!
//! Pairs are processed in ascending lower-bound order in batches. For each
//! batch:
//!
//! - **mark**: tree nodes are marked with their component when uniform, so
//!   pairs whose two sides already share one component are *filtered* —
//!   their BCP is never computed (the memoized-filter idea that gives
//!   MemoGFK its name);
//! - surviving pairs get their exact BCP computed (in parallel in the MT
//!   variant);
//! - exact edges are committed in Kruskal order **only up to the smallest
//!   lower bound still unprocessed** — later batches cannot produce a
//!   lighter edge, so the commit order is globally correct; the rest carry
//!   over.
//!
//! With separation `s ≥ 2` every MST edge is the BCP of exactly one pair, so
//! the committed edges form the exact EMST (tested against the brute-force
//! Kruskal oracle).

use rayon::prelude::*;

use emst_core::{Edge, UnionFind};
use emst_exec::PhaseTimings;
use emst_geometry::{nonneg_f32_to_ordered_bits, Point};

use crate::bcp::{bichromatic_closest_pair_with_metric, Bcp};
use crate::decomposition::{Wspd, WspdPair};

/// Result of the WSPD-based EMST computation.
#[derive(Clone, Debug)]
pub struct WspdEmstResult {
    /// The `n − 1` tree edges (original indices, `u < v`).
    pub edges: Vec<Edge>,
    /// Sum of edge weights in `f64`.
    pub total_weight: f64,
    /// Phases: `"tree"`, `"wspd"`, `"mst"`, `"mark"` (Fig. 8a's T_*).
    pub timings: PhaseTimings,
    /// Number of well-separated pairs produced.
    pub num_pairs: usize,
    /// Pairs whose BCP was actually computed (the rest were filtered).
    pub bcps_computed: usize,
    /// Point-distance computations inside BCP evaluations.
    pub distance_computations: u64,
}

const INVALID_COMP: u32 = u32::MAX;

/// Computes the EMST via WSPD + GeoFilterKruskal.
///
/// `parallel` selects the multithreaded variant (rayon): parallel tree/WSPD
/// construction and parallel BCP batches, with the Kruskal commit step
/// sequential — the same split MemoGFK has (and why its `T_mst` scales worse
/// than `T_wspd` in the paper's Fig. 8a).
pub fn wspd_emst<const D: usize>(points: &[Point<D>], parallel: bool) -> WspdEmstResult {
    wspd_emst_with_metric(points, parallel, &emst_geometry::Euclidean)
}

/// The MST under an arbitrary [`emst_geometry::Metric`] (mutual reachability
/// for HDBSCAN*, as MemoGFK supports — paper §4.5 / Fig. 9). The pair lower
/// bounds remain Euclidean box distances, which under-estimate any
/// dominating metric, so the batched Kruskal commit order stays valid.
pub fn wspd_emst_with_metric<M: emst_geometry::Metric, const D: usize>(
    points: &[Point<D>],
    parallel: bool,
    metric: &M,
) -> WspdEmstResult {
    let n = points.len();
    // On a single-threaded pool the rayon paths only add fork/merge
    // overhead; fall back to the sequential code (what OpenMP with
    // OMP_NUM_THREADS=1 would do in MemoGFK).
    let parallel = parallel && rayon::current_num_threads() > 1;
    let mut timings = PhaseTimings::new();
    if n < 2 {
        return WspdEmstResult {
            edges: vec![],
            total_weight: 0.0,
            timings,
            num_pairs: 0,
            bcps_computed: 0,
            distance_computations: 0,
        };
    }

    // Phase 1: tree construction.
    let kd = timings.time("tree", || emst_kdtree::KdTree::build_with_leaf_size(points, 1));
    // Phase 2: the decomposition.
    let wspd = timings.time("wspd", || Wspd::from_tree(kd, 2.0, parallel));

    let num_pairs = wspd.pairs.len();
    let mut pairs: Vec<WspdPair> = wspd.pairs;
    let tree = &wspd.tree;

    // Sort pairs by lower bound (ascending).
    let mst_start = std::time::Instant::now();
    if parallel {
        pairs.par_sort_unstable_by(|a, b| a.lower_bound_sq.total_cmp(&b.lower_bound_sq));
    } else {
        pairs.sort_unstable_by(|a, b| a.lower_bound_sq.total_cmp(&b.lower_bound_sq));
    }

    let mut dsu = UnionFind::new(n);
    let mut labels = vec![0u32; n]; // permuted position -> component rep
    let mut node_comp = vec![INVALID_COMP; tree.nodes.len()];
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut carry: Vec<Bcp> = vec![];
    let mut cursor = 0usize;
    let mut bcps_computed = 0usize;
    let mut distance_computations = 0u64;
    let mut mark_seconds = 0.0f64;

    let batch_size = (n / 4).clamp(1024, 1 << 20);

    while cursor < pairs.len() || !carry.is_empty() {
        if edges.len() == n - 1 {
            break;
        }
        let batch_end = (cursor + batch_size).min(pairs.len());
        let threshold_bits = if batch_end < pairs.len() {
            nonneg_f32_to_ordered_bits(pairs[batch_end].lower_bound_sq)
        } else {
            u32::MAX
        };

        // Mark phase: refresh per-position labels and node uniformity.
        let mark_start = std::time::Instant::now();
        for pos in 0..n {
            labels[pos] = dsu.find(tree.original_index(pos) as usize) as u32;
        }
        for i in (0..tree.nodes.len()).rev() {
            node_comp[i] = match tree.nodes[i].children {
                None => {
                    let node = &tree.nodes[i];
                    let first = labels[node.start as usize];
                    if (node.start as usize + 1..node.end as usize).all(|p| labels[p] == first) {
                        first
                    } else {
                        INVALID_COMP
                    }
                }
                Some((l, r)) => {
                    let (cl, cr) = (node_comp[l as usize], node_comp[r as usize]);
                    if cl != INVALID_COMP && cl == cr {
                        cl
                    } else {
                        INVALID_COMP
                    }
                }
            };
        }
        mark_seconds += mark_start.elapsed().as_secs_f64();

        // Filter + BCP for the batch.
        let batch = &pairs[cursor..batch_end];
        cursor = batch_end;
        let live: Vec<&WspdPair> = batch
            .iter()
            .filter(|p| {
                let (cu, cv) = (node_comp[p.u as usize], node_comp[p.v as usize]);
                cu == INVALID_COMP || cu != cv
            })
            .collect();
        bcps_computed += live.len();
        let new_bcps: Vec<(Bcp, u64)> = if parallel {
            live.par_iter()
                .map(|p| {
                    bichromatic_closest_pair_with_metric(tree, p.u as usize, p.v as usize, metric)
                })
                .collect()
        } else {
            live.iter()
                .map(|p| {
                    bichromatic_closest_pair_with_metric(tree, p.u as usize, p.v as usize, metric)
                })
                .collect()
        };
        for (b, w) in new_bcps {
            distance_computations += w;
            carry.push(b);
        }

        // Commit in Kruskal order up to the threshold.
        carry.sort_unstable_by_key(Bcp::key);
        let mut kept = Vec::with_capacity(carry.len());
        for b in carry.drain(..) {
            if nonneg_f32_to_ordered_bits(b.dist_sq) >= threshold_bits {
                kept.push(b);
                continue;
            }
            if dsu.union(b.u as usize, b.v as usize) {
                edges.push(Edge::new(b.u, b.v, b.dist_sq));
            }
        }
        carry = kept;

        if cursor >= pairs.len() {
            // Final drain: no unprocessed pair remains; commit everything.
            carry.sort_unstable_by_key(Bcp::key);
            for b in carry.drain(..) {
                if dsu.union(b.u as usize, b.v as usize) {
                    edges.push(Edge::new(b.u, b.v, b.dist_sq));
                }
            }
        }
    }
    let mst_total = mst_start.elapsed().as_secs_f64();
    timings.record("mark", mark_seconds);
    timings.record("mst", (mst_total - mark_seconds).max(0.0));

    debug_assert_eq!(edges.len(), n - 1, "WSPD Kruskal must span the point set");
    WspdEmstResult {
        total_weight: emst_core::edge::total_weight(&edges),
        edges,
        timings,
        num_pairs,
        bcps_computed,
        distance_computations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn trivial_sizes() {
        assert!(wspd_emst::<2>(&[], false).edges.is_empty());
        assert!(wspd_emst(&[Point::new([1.0f32, 1.0])], false).edges.is_empty());
        let two = [Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let r = wspd_emst(&two, false);
        assert_eq!(r.edges, vec![Edge::new(0, 1, 25.0)]);
        assert_eq!(r.total_weight, 5.0);
    }

    #[test]
    fn matches_brute_force_sequential_and_parallel() {
        for seed in 0..4 {
            let pts = random_points(220, seed);
            for parallel in [false, true] {
                let r = wspd_emst(&pts, parallel);
                verify_spanning_tree(pts.len(), &r.edges).unwrap();
                assert_eq!(
                    weight_multiset(&r.edges),
                    weight_multiset(&brute_force_emst(&pts)),
                    "seed {seed} parallel {parallel}"
                );
            }
        }
    }

    #[test]
    fn grid_ties_match_brute_force() {
        let pts: Vec<Point<2>> =
            (0..9).flat_map(|x| (0..9).map(move |y| Point::new([x as f32, y as f32]))).collect();
        let r = wspd_emst(&pts, false);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn duplicates_match_brute_force() {
        let mut pts = random_points(50, 5);
        pts.extend(std::iter::repeat_n(pts[0], 12));
        let r = wspd_emst(&pts, false);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn three_dimensional_matches() {
        let mut rng = StdRng::seed_from_u64(19);
        let pts: Vec<Point<3>> = (0..150)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                ])
            })
            .collect();
        let r = wspd_emst(&pts, true);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn mutual_reachability_matches_brute_force() {
        use emst_core::brute::brute_force_mst;
        use emst_geometry::{brute_force_core_distances_sq, MutualReachability};
        for k in [2usize, 4, 8] {
            let pts = random_points(150, 40 + k as u64);
            let core = brute_force_core_distances_sq(&pts, k);
            let metric = MutualReachability::new(&core);
            let r = wspd_emst_with_metric(&pts, false, &metric);
            verify_spanning_tree(pts.len(), &r.edges).unwrap();
            let brute = brute_force_mst(&pts, &metric);
            assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute), "k_pts={k}");
        }
    }

    #[test]
    fn mrd_proptest_style_sweep() {
        use emst_core::brute::brute_force_mst;
        use emst_geometry::{brute_force_core_distances_sq, MutualReachability};
        for seed in 200..212 {
            let n = 20 + (seed as usize % 60);
            let pts = random_points(n, seed);
            let core = brute_force_core_distances_sq(&pts, 3);
            let metric = MutualReachability::new(&core);
            let r = wspd_emst_with_metric(&pts, seed % 2 == 0, &metric);
            verify_spanning_tree(n, &r.edges).unwrap();
            assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_mst(&pts, &metric)),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn filtering_skips_bcps() {
        let pts = random_points(3000, 23);
        let r = wspd_emst(&pts, false);
        assert!(
            r.bcps_computed < r.num_pairs,
            "filter should skip some of the {} pairs (computed {})",
            r.num_pairs,
            r.bcps_computed
        );
    }

    #[test]
    fn phases_are_recorded() {
        let pts = random_points(500, 29);
        let r = wspd_emst(&pts, false);
        assert!(r.timings.get("tree") >= 0.0);
        assert!(r.timings.get("wspd") >= 0.0);
        assert!(r.timings.get("mst") > 0.0);
        assert!(r.timings.get("mark") > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn wspd_emst_equals_brute_force(
            n in 2usize..110, seed in 0u64..5000, parallel in any::<bool>()
        ) {
            let pts = random_points(n, seed);
            let r = wspd_emst(&pts, parallel);
            prop_assert!(verify_spanning_tree(n, &r.edges).is_ok());
            prop_assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_emst(&pts))
            );
        }

        #[test]
        fn wspd_emst_on_integer_ties(n in 2usize..70, seed in 0u64..300) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([
                    rng.random_range(0i32..5) as f32,
                    rng.random_range(0i32..5) as f32,
                ]))
                .collect();
            let r = wspd_emst(&pts, false);
            prop_assert!(verify_spanning_tree(n, &r.edges).is_ok());
            prop_assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_emst(&pts))
            );
        }
    }
}
