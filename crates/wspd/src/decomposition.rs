//! The well-separated pair decomposition (Callahan & Kosaraju 1995).

use emst_geometry::{Point, Scalar};
use emst_kdtree::KdTree;

/// One well-separated node pair `(u, v)` of the decomposition, with the
/// squared box-to-box distance as a lower bound on any cross distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WspdPair {
    /// First node (index into the tree's node array).
    pub u: u32,
    /// Second node.
    pub v: u32,
    /// Squared minimum distance between the two bounding boxes.
    pub lower_bound_sq: Scalar,
}

/// A decomposition over a singleton-leaf kd-tree.
pub struct Wspd<const D: usize> {
    /// The spatial tree the pairs refer to.
    pub tree: KdTree<D>,
    /// The well-separated pairs.
    pub pairs: Vec<WspdPair>,
    /// Separation parameter used (`s`).
    pub separation: Scalar,
}

impl<const D: usize> Wspd<D> {
    /// Builds the decomposition with separation `s` (the MST theorem needs
    /// `s >= 2`). `parallel` selects the rayon recursion.
    pub fn build(points: &[Point<D>], separation: Scalar, parallel: bool) -> Self {
        assert!(!points.is_empty());
        let tree = KdTree::build_with_leaf_size(points, 1);
        Self::from_tree(tree, separation, parallel)
    }

    /// Builds the decomposition over an existing singleton-leaf tree (lets
    /// callers time the two stages separately, as the paper's Fig. 8a does).
    pub fn from_tree(tree: KdTree<D>, separation: Scalar, parallel: bool) -> Self {
        let pairs = if tree.len() == 1 {
            vec![]
        } else if parallel {
            wspd_pairs_parallel(&tree, separation, 0)
        } else {
            let mut out = vec![];
            wspd_pairs_serial(&tree, separation, 0, &mut out);
            out
        };
        Self { tree, pairs, separation }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when built over zero points (impossible; `build` asserts).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

/// Squared diameter of a node's bounding box.
#[inline]
fn diam_sq<const D: usize>(tree: &KdTree<D>, node: usize) -> Scalar {
    let b = &tree.nodes[node].aabb;
    b.min.squared_distance(&b.max)
}

/// The separation predicate: boxes are `s`-well-separated when the distance
/// between them is at least `s/2 ×` the larger diameter (enclosing each box
/// in a ball of radius `diam/2`).
#[inline]
fn well_separated<const D: usize>(
    tree: &KdTree<D>,
    u: usize,
    v: usize,
    separation: Scalar,
) -> bool {
    let d_sq = tree.nodes[u].aabb.squared_distance_to_box(&tree.nodes[v].aabb);
    let r_sq = diam_sq(tree, u).max(diam_sq(tree, v)) * 0.25;
    d_sq >= separation * separation * r_sq
}

fn wspd_pairs_serial<const D: usize>(
    tree: &KdTree<D>,
    s: Scalar,
    node: usize,
    out: &mut Vec<WspdPair>,
) {
    if let Some((l, r)) = tree.nodes[node].children {
        wspd_pairs_serial(tree, s, l as usize, out);
        wspd_pairs_serial(tree, s, r as usize, out);
        find_pairs_serial(tree, s, l as usize, r as usize, out);
    }
}

fn find_pairs_serial<const D: usize>(
    tree: &KdTree<D>,
    s: Scalar,
    u: usize,
    v: usize,
    out: &mut Vec<WspdPair>,
) {
    if well_separated(tree, u, v, s) {
        out.push(WspdPair {
            u: u as u32,
            v: v as u32,
            lower_bound_sq: tree.nodes[u].aabb.squared_distance_to_box(&tree.nodes[v].aabb),
        });
        return;
    }
    // Split the node with the larger diameter (ties: more points).
    let (du, dv) = (diam_sq(tree, u), diam_sq(tree, v));
    let split_u = match du.total_cmp(&dv) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => tree.nodes[u].len() >= tree.nodes[v].len(),
    };
    if split_u {
        let (l, r) = tree.nodes[u].children.expect("splittable node must be internal");
        find_pairs_serial(tree, s, l as usize, v, out);
        find_pairs_serial(tree, s, r as usize, v, out);
    } else {
        let (l, r) = tree.nodes[v].children.expect("splittable node must be internal");
        find_pairs_serial(tree, s, u, l as usize, out);
        find_pairs_serial(tree, s, u, r as usize, out);
    }
}

/// Rayon variant: forks the two independent subproblems at every internal
/// node above a size cutoff, then merges the pair lists.
fn wspd_pairs_parallel<const D: usize>(tree: &KdTree<D>, s: Scalar, node: usize) -> Vec<WspdPair> {
    const FORK_CUTOFF: usize = 2048;
    let Some((l, r)) = tree.nodes[node].children else {
        return vec![];
    };
    if tree.nodes[node].len() < FORK_CUTOFF {
        let mut out = vec![];
        wspd_pairs_serial(tree, s, node, &mut out);
        return out;
    }
    let (mut a, (b, c)) = rayon::join(
        || wspd_pairs_parallel(tree, s, l as usize),
        || {
            rayon::join(
                || wspd_pairs_parallel(tree, s, r as usize),
                || {
                    let mut out = vec![];
                    find_pairs_serial(tree, s, l as usize, r as usize, &mut out);
                    out
                },
            )
        },
    );
    a.extend(b);
    a.extend(c);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect()
    }

    /// Every unordered point pair must be covered by exactly one WSPD pair.
    fn check_coverage<const D: usize>(w: &Wspd<D>) {
        let n = w.len();
        let mut covered = vec![0u32; n * n];
        for p in &w.pairs {
            let (un, vn) = (&w.tree.nodes[p.u as usize], &w.tree.nodes[p.v as usize]);
            for a in un.start..un.end {
                for b in vn.start..vn.end {
                    let (ia, ib) = (
                        w.tree.original_index(a as usize) as usize,
                        w.tree.original_index(b as usize) as usize,
                    );
                    covered[ia * n + ib] += 1;
                    covered[ib * n + ia] += 1;
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let expect = u32::from(i != j);
                assert_eq!(
                    covered[i * n + j],
                    expect,
                    "pair ({i},{j}) covered {} times",
                    covered[i * n + j]
                );
            }
        }
    }

    /// Every emitted pair must satisfy the separation predicate.
    fn check_separation<const D: usize>(w: &Wspd<D>) {
        for p in &w.pairs {
            assert!(
                well_separated(&w.tree, p.u as usize, p.v as usize, w.separation),
                "pair {p:?} is not well-separated"
            );
            assert_eq!(
                p.lower_bound_sq,
                w.tree.nodes[p.u as usize]
                    .aabb
                    .squared_distance_to_box(&w.tree.nodes[p.v as usize].aabb)
            );
        }
    }

    #[test]
    fn small_random_sets_cover_all_pairs() {
        for seed in 0..5 {
            let pts = random_points(40, seed);
            let w = Wspd::build(&pts, 2.0, false);
            check_coverage(&w);
            check_separation(&w);
        }
    }

    #[test]
    fn single_point_has_no_pairs() {
        let w = Wspd::build(&[Point::new([0.0f32, 0.0])], 2.0, false);
        assert!(w.pairs.is_empty());
    }

    #[test]
    fn two_points_form_one_pair() {
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([1.0, 0.0])];
        let w = Wspd::build(&pts, 2.0, false);
        assert_eq!(w.pairs.len(), 1);
        assert_eq!(w.pairs[0].lower_bound_sq, 1.0);
    }

    #[test]
    fn duplicate_points_are_covered() {
        let mut pts = vec![Point::new([0.5f32, 0.5]); 6];
        pts.push(Point::new([0.9, 0.9]));
        let w = Wspd::build(&pts, 2.0, false);
        check_coverage(&w);
        check_separation(&w);
    }

    #[test]
    fn parallel_and_serial_agree_on_pair_multiset() {
        let pts = random_points(300, 7);
        let ws = Wspd::build(&pts, 2.0, false);
        let wp = Wspd::build(&pts, 2.0, true);
        let norm = |w: &Wspd<2>| {
            let mut v: Vec<(u32, u32)> =
                w.pairs.iter().map(|p| (p.u.min(p.v), p.u.max(p.v))).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&ws), norm(&wp));
    }

    #[test]
    fn pair_count_is_near_linear_on_uniform_data() {
        let n = 2000;
        let pts = random_points(n, 13);
        let w = Wspd::build(&pts, 2.0, false);
        // O(s^d n) with modest constants for uniform data; guard against a
        // quadratic regression.
        assert!(w.pairs.len() < 80 * n, "pair count {} looks superlinear", w.pairs.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn coverage_and_separation_hold(n in 1usize..40, seed in 0u64..500) {
            let pts = random_points(n, seed);
            let w = Wspd::build(&pts, 2.0, false);
            check_coverage(&w);
            check_separation(&w);
        }

        #[test]
        fn coverage_with_integer_ties(n in 2usize..30, seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([
                    rng.random_range(0i32..4) as f32,
                    rng.random_range(0i32..4) as f32,
                ]))
                .collect();
            let w = Wspd::build(&pts, 2.0, false);
            check_coverage(&w);
        }
    }
}
