//! Bichromatic closest pair between two tree nodes.
//!
//! The MST-relevant output of every well-separated pair: with separation
//! `s ≥ 2`, an MST edge crossing the pair must be its closest red–blue pair
//! (Agarwal et al. 1991; Narasimhan's GeoMST2; Wang et al. 2021).

use emst_geometry::Scalar;
use emst_kdtree::KdTree;

/// An exact BCP candidate in original-index space (`u < v` not enforced —
/// `u` is from the first node).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bcp {
    /// Point from the first node (original index).
    pub u: u32,
    /// Point from the second node (original index).
    pub v: u32,
    /// Squared Euclidean distance.
    pub dist_sq: Scalar,
}

impl Bcp {
    /// `(weight, min, max)` total-order key.
    #[inline]
    pub fn key(&self) -> (u32, u32, u32) {
        (
            emst_geometry::nonneg_f32_to_ordered_bits(self.dist_sq),
            self.u.min(self.v),
            self.u.max(self.v),
        )
    }
}

/// Computes the Euclidean bichromatic closest pair between nodes `u` and
/// `v`, tie-broken by the `(weight, min, max)` order. Also returns the
/// number of point-distance computations performed.
pub fn bichromatic_closest_pair<const D: usize>(
    tree: &KdTree<D>,
    u: usize,
    v: usize,
) -> (Bcp, u64) {
    bichromatic_closest_pair_with_metric(tree, u, v, &emst_geometry::Euclidean)
}

/// BCP under an arbitrary [`emst_geometry::Metric`] (indexed by original
/// point indices). Box pruning stays Euclidean, which is valid because every
/// metric in this workspace dominates the Euclidean distance — the same
/// property the paper's §3 uses for its traversal.
pub fn bichromatic_closest_pair_with_metric<M: emst_geometry::Metric, const D: usize>(
    tree: &KdTree<D>,
    u: usize,
    v: usize,
    metric: &M,
) -> (Bcp, u64) {
    let mut best = Bcp { u: u32::MAX, v: u32::MAX, dist_sq: Scalar::INFINITY };
    let mut work = 0u64;
    bcp_recurse(tree, u, v, metric, &mut best, &mut work);
    debug_assert!(best.u != u32::MAX, "BCP of non-empty nodes must exist");
    (best, work)
}

fn bcp_recurse<M: emst_geometry::Metric, const D: usize>(
    tree: &KdTree<D>,
    u: usize,
    v: usize,
    metric: &M,
    best: &mut Bcp,
    work: &mut u64,
) {
    let (un, vn) = (&tree.nodes[u], &tree.nodes[v]);
    // Prune: keep equality so tie candidates with better keys survive.
    if un.aabb.squared_distance_to_box(&vn.aabb) > best.dist_sq {
        return;
    }
    match (un.children, vn.children) {
        (None, None) => {
            for a in un.start as usize..un.end as usize {
                let pa = &tree.points[a];
                let a_orig = tree.original_index(a);
                for b in vn.start as usize..vn.end as usize {
                    let e = pa.squared_distance(&tree.points[b]);
                    *work += 1;
                    if e > best.dist_sq {
                        continue; // metric >= Euclidean: cannot win
                    }
                    let b_orig = tree.original_index(b);
                    let d = metric.squared_distance(a_orig, b_orig, e);
                    let cand = Bcp { u: a_orig, v: b_orig, dist_sq: d };
                    if cand.key() < best.key() {
                        *best = cand;
                    }
                }
            }
        }
        (Some((ul, ur)), None) => {
            let (first, second) = order(tree, v, ul, ur);
            bcp_recurse(tree, first, v, metric, best, work);
            bcp_recurse(tree, second, v, metric, best, work);
        }
        (None, Some((vl, vr))) => {
            let (first, second) = order(tree, u, vl, vr);
            bcp_recurse(tree, u, first, metric, best, work);
            bcp_recurse(tree, u, second, metric, best, work);
        }
        (Some((ul, ur)), Some((vl, vr))) => {
            // Visit the four child pairs nearest-first.
            let mut combos = [
                (ul as usize, vl as usize),
                (ul as usize, vr as usize),
                (ur as usize, vl as usize),
                (ur as usize, vr as usize),
            ];
            let dist = |&(a, b): &(usize, usize)| {
                tree.nodes[a].aabb.squared_distance_to_box(&tree.nodes[b].aabb)
            };
            combos.sort_by(|x, y| dist(x).total_cmp(&dist(y)));
            for (a, b) in combos {
                bcp_recurse(tree, a, b, metric, best, work);
            }
        }
    }
}

fn order<const D: usize>(tree: &KdTree<D>, fixed: usize, l: u32, r: u32) -> (usize, usize) {
    let fb = &tree.nodes[fixed].aabb;
    let dl = fb.squared_distance_to_box(&tree.nodes[l as usize].aabb);
    let dr = fb.squared_distance_to_box(&tree.nodes[r as usize].aabb);
    if dl <= dr {
        (l as usize, r as usize)
    } else {
        (r as usize, l as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geometry::Point;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn tree_of(points: &[Point<2>]) -> KdTree<2> {
        KdTree::build_with_leaf_size(points, 1)
    }

    #[test]
    fn bcp_of_two_singletons() {
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let tree = tree_of(&pts);
        let (l, r) = tree.nodes[0].children.unwrap();
        let (bcp, _) = bichromatic_closest_pair(&tree, l as usize, r as usize);
        assert_eq!(bcp.dist_sq, 25.0);
    }

    #[test]
    fn bcp_matches_brute_force_between_subtrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point<2>> = (0..200)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect();
        let tree = tree_of(&pts);
        let (l, r) = tree.nodes[0].children.unwrap();
        let (bcp, work) = bichromatic_closest_pair(&tree, l as usize, r as usize);
        // brute force across the split
        let (ln, rn) = (&tree.nodes[l as usize], &tree.nodes[r as usize]);
        let mut best = f32::INFINITY;
        for a in ln.start as usize..ln.end as usize {
            for b in rn.start as usize..rn.end as usize {
                best = best.min(tree.points[a].squared_distance(&tree.points[b]));
            }
        }
        assert_eq!(bcp.dist_sq, best);
        // Pruning must beat the full cross product.
        assert!(work < (ln.len() * rn.len()) as u64);
    }

    #[test]
    fn bcp_handles_coincident_points() {
        let pts = vec![
            Point::new([0.5f32, 0.5]),
            Point::new([0.5, 0.5]),
            Point::new([0.5, 0.5]),
            Point::new([1.0, 1.0]),
        ];
        let tree = tree_of(&pts);
        let (l, r) = tree.nodes[0].children.unwrap();
        let (bcp, _) = bichromatic_closest_pair(&tree, l as usize, r as usize);
        assert_eq!(bcp.dist_sq, 0.0);
    }
}
